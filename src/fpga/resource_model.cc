#include "fpga/resource_model.h"

#include <cmath>

#include "common/logging.h"

namespace ch {

namespace {

/**
 * Calibration anchors from the paper's Table 3 (RSD on XCVU440), indexed
 * by width {4, 8, 16}: {lutAlloc, ffAlloc, lutTotal, ffTotal}.
 */
struct Anchor {
    int width;
    long lutAlloc, ffAlloc, lutTotal, ffTotal;
};

const Anchor kRiscAnchors[] = {
    {4, 2310, 998, 101483, 31081},
    {8, 12309, 7521, 190380, 45708},
    {16, 30230, 14938, 350377, 63338},
};
const Anchor kStraightAnchors[] = {
    {4, 442, 572, 96631, 28769},
    {8, 787, 1092, 188118, 43928},
    {16, 1641, 2132, 354105, 57214},
};
const Anchor kClockhandsAnchors[] = {
    {4, 401, 560, 99913, 30968},
    {8, 761, 1086, 185701, 42254},
    {16, 1432, 2162, 349074, 55220},
};

const Anchor*
anchorsFor(Isa isa)
{
    switch (isa) {
      case Isa::Riscv: return kRiscAnchors;
      case Isa::Straight: return kStraightAnchors;
      case Isa::Clockhands: return kClockhandsAnchors;
    }
    return kRiscAnchors;
}

/** Power-law interpolation/extrapolation through the nearest anchors. */
long
interp(const Anchor* a, int width, long Anchor::*field)
{
    auto value = [&](const Anchor& x) {
        return static_cast<double>(x.*field);
    };
    // Clamp to a sane range, then pick the bracketing pair.
    const Anchor *lo = &a[0], *hi = &a[1];
    if (width >= 8) {
        lo = &a[1];
        hi = &a[2];
    }
    const double exponent =
        std::log(value(*hi) / value(*lo)) /
        std::log(static_cast<double>(hi->width) / lo->width);
    const double scale =
        value(*lo) / std::pow(static_cast<double>(lo->width), exponent);
    return static_cast<long>(
        std::llround(scale * std::pow(static_cast<double>(width),
                                      exponent)));
}

} // namespace

FpgaResources
estimateFpga(Isa isa, int width)
{
    CH_ASSERT(width >= 1 && width <= 64, "width out of range");
    const Anchor* a = anchorsFor(isa);
    FpgaResources r;
    r.width = width;
    r.lutAllocStage = interp(a, width, &Anchor::lutAlloc);
    r.ffAllocStage = interp(a, width, &Anchor::ffAlloc);
    r.lutTotal = interp(a, width, &Anchor::lutTotal);
    r.ffTotal = interp(a, width, &Anchor::ffTotal);
    return r;
}

} // namespace ch
