#ifndef CH_FPGA_RESOURCE_MODEL_H
#define CH_FPGA_RESOURCE_MODEL_H

/**
 * @file
 * Analytic FPGA resource model for the physical-register-allocation
 * stage and the overall core (paper Table 3; the paper synthesized
 * modified RSD soft processors for a Xilinx XCVU440).
 *
 * Without the FPGA toolchain, we substitute a structural model:
 *
 *  - RISC rename: a 64-entry x ~9-bit RMT needs LUT-RAM replication for
 *    its 2W read + W write ports (copies ~ W^2), plus O(W^2) 6-bit
 *    dependency-check comparators and W x 570-bit checkpoint copy
 *    muxing. Flip-flops hold checkpoints and pipeline registers.
 *  - STRAIGHT/Clockhands RP calculation: 1 or 4 register pointers with a
 *    Brent-Kung prefix-sum tree, O(W) LUTs and O(W) pipeline FFs.
 *
 * Technology coefficients (LUTs per comparator bit, LUT-RAM packing,
 * routing overhead growth) are calibrated against the RSD synthesis
 * results the paper reports at widths 4/8/16, and the model interpolates
 * power-law-wise between those calibration points. Overall-core numbers
 * add a common back-end estimate that is identical across ISAs except
 * for the allocation stage.
 */

#include "isa/isa.h"

namespace ch {

/** LUT/FF estimates for one soft-core configuration. */
struct FpgaResources {
    int width = 0;
    long lutAllocStage = 0;  ///< physical-register-allocation stage
    long ffAllocStage = 0;
    long lutTotal = 0;       ///< whole core
    long ffTotal = 0;
};

/** Estimate resources for @p isa at front-end @p width (>= 1). */
FpgaResources estimateFpga(Isa isa, int width);

} // namespace ch

#endif // CH_FPGA_RESOURCE_MODEL_H
