#ifndef CH_ISA_ENCODING_H
#define CH_ISA_ENCODING_H

/**
 * @file
 * 32-bit binary instruction encodings for the three ISAs.
 *
 * All three share a 7-bit opcode in bits [6:0] (the shared Op enum) and
 * differ only in their operand fields, mirroring the paper's Fig. 5:
 *
 *  RISC        R: rd[11:7]  rs1[16:12] rs2[21:17]            (15 operand bits)
 *              I: rd[11:7]  rs1[16:12] imm[31:17] (15b)
 *              S/B: rs1[11:7] rs2[16:12] imm[31:17] (15b; B scaled x4)
 *              U: rd[11:7]  imm[31:12] (20b)   J: rd[11:7] imm[31:12] (x4)
 *
 *  STRAIGHT    R: d1[13:7] d2[20:14]                         (14 operand bits)
 *              I: d1[13:7] imm[31:14] (18b)
 *              S/B: d1[13:7] d2[20:14] imm[31:21] (11b; B scaled x4)
 *              U: imm[26:7] (20b)              J: imm[31:7] (25b, x4)
 *
 *  Clockhands  R: dh[8:7] s1h[10:9] s1d[14:11] s2h[16:15] s2d[20:17] (14 bits)
 *              I: dh[8:7] s1h[10:9] s1d[14:11] imm[31:15] (17b)
 *              S/B: s1h[8:7] s1d[12:9] s2h[14:13] s2d[18:15] imm[31:19]
 *                   (13b; B scaled x4)
 *              U: dh[8:7] imm[28:9] (20b)      J: dh[8:7] imm[31:9] (23b, x4)
 *
 * Branch/jump immediates are byte offsets relative to the branch PC and
 * must be multiples of 4. Distances use the conventions of isa.h
 * (STRAIGHT: 0 = zero register; Clockhands: s[15] = zero register).
 */

#include <cstdint>
#include <string>

#include "isa/isa.h"

namespace ch {

/** Serialize @p inst to a 32-bit word; fatal() if a field overflows. */
uint32_t encode(Isa isa, const Inst& inst);

/** Decode a 32-bit word; fatal() on an unknown opcode. */
Inst decode(Isa isa, uint32_t word);

/** True when every field of @p inst fits its encoding. */
bool encodable(Isa isa, const Inst& inst);

/**
 * Disassemble one instruction in the paper's assembly syntax
 * (e.g. "addi t, t[1], 4" / "sw [5], 0(sp)" / "bne a1, a5, -16").
 * Branch targets are printed as signed byte offsets.
 */
std::string disassemble(Isa isa, const Inst& inst);

/** ABI-style RISC register name (zero, ra, sp, a0.., s0.., t0.., f0..). */
std::string riscRegName(uint8_t reg);

} // namespace ch

#endif // CH_ISA_ENCODING_H
