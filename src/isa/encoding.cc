#include "isa/encoding.h"

#include <cstdio>

#include "common/bitutil.h"
#include "common/logging.h"

namespace ch {

namespace {

/** Immediate field width (bits) for @p isa and @p fmt. */
unsigned
immWidth(Isa isa, Fmt fmt)
{
    switch (isa) {
      case Isa::Riscv:
        switch (fmt) {
          case Fmt::I: case Fmt::S: case Fmt::B: return 15;
          case Fmt::U: case Fmt::J: return 20;
          default: return 0;
        }
      case Isa::Straight:
        switch (fmt) {
          case Fmt::I: return 18;
          case Fmt::S: case Fmt::B: return 11;
          case Fmt::U: return 20;
          case Fmt::J: return 25;
          default: return 0;
        }
      case Isa::Clockhands:
        switch (fmt) {
          case Fmt::I: return 17;
          case Fmt::S: case Fmt::B: return 13;
          case Fmt::U: return 20;
          case Fmt::J: return 23;
          default: return 0;
        }
    }
    return 0;
}

/** Branch-format immediates are stored scaled down by 4. */
bool
isScaled(const OpInfo& info)
{
    return info.brKind != BrKind::None;
}

/** Range-check the immediate; returns the raw field value. */
bool
immField(Isa isa, const Inst& inst, int64_t* field)
{
    const OpInfo& info = inst.info();
    const unsigned width = immWidth(isa, info.fmt);
    int64_t value = inst.imm;
    if (isScaled(info)) {
        if (value & 3)
            return false;
        value >>= 2;
    }
    if (width == 0)
        return inst.imm == 0;
    if (!fitsSigned(value, width))
        return false;
    *field = value;
    return true;
}

bool
checkDistance(Isa isa, uint8_t dist)
{
    if (isa == Isa::Straight)
        return dist <= kStraightMaxDist || dist == kStraightSpBase;
    return dist < kHandDepth;
}

} // namespace

bool
encodable(Isa isa, const Inst& inst)
{
    int64_t field;
    if (!immField(isa, inst, &field))
        return false;
    const OpInfo& info = inst.info();
    switch (isa) {
      case Isa::Riscv: {
        // Register fields are 5 bits; the op's class flags select the
        // integer (0..31) or FP (32..63) file, as in real RISC-V.
        auto classOk = [](uint8_t reg, bool fp) {
            return fp ? (reg >= 32 && reg < 64) : reg < 32;
        };
        if (info.hasDst && !classOk(inst.dst, info.fpDst()))
            return false;
        if (info.numSrcs >= 1 && !classOk(inst.src1, info.fpSrc1()))
            return false;
        if (info.numSrcs >= 2 && !classOk(inst.src2, info.fpSrc2()))
            return false;
        return true;
      }
      case Isa::Straight:
        if (info.numSrcs >= 1 && !checkDistance(isa, inst.src1))
            return false;
        if (info.numSrcs >= 2 && !checkDistance(isa, inst.src2))
            return false;
        return true;
      case Isa::Clockhands:
        if (info.hasDst && inst.dst >= kNumHands)
            return false;
        if (info.numSrcs >= 1 &&
            (inst.src1Hand >= kNumHands || !checkDistance(isa, inst.src1))) {
            return false;
        }
        if (info.numSrcs >= 2 &&
            (inst.src2Hand >= kNumHands || !checkDistance(isa, inst.src2))) {
            return false;
        }
        return true;
    }
    return false;
}

uint32_t
encode(Isa isa, const Inst& inst)
{
    if (!encodable(isa, inst)) {
        fatal("unencodable instruction for ", isaName(isa), ": ",
              disassemble(isa, inst));
    }
    const OpInfo& info = inst.info();
    int64_t imm = 0;
    immField(isa, inst, &imm);
    const auto uimm = static_cast<uint32_t>(imm);

    uint32_t w = static_cast<uint32_t>(inst.op) & 0x7f;
    switch (isa) {
      case Isa::Riscv:
        switch (info.fmt) {
          case Fmt::R:
            w = insertBits(w, 11, 7, inst.dst & 31);
            w = insertBits(w, 16, 12, inst.src1 & 31);
            w = insertBits(w, 21, 17, inst.src2 & 31);
            break;
          case Fmt::I:
            w = insertBits(w, 11, 7, inst.dst & 31);
            w = insertBits(w, 16, 12, inst.src1 & 31);
            w = insertBits(w, 31, 17, uimm);
            break;
          case Fmt::S:
          case Fmt::B:
            w = insertBits(w, 11, 7, inst.src1 & 31);
            w = insertBits(w, 16, 12, inst.src2 & 31);
            w = insertBits(w, 31, 17, uimm);
            break;
          case Fmt::U:
          case Fmt::J:
            w = insertBits(w, 11, 7, inst.dst & 31);
            w = insertBits(w, 31, 12, uimm);
            break;
          case Fmt::None:
            break;
        }
        break;
      case Isa::Straight:
        switch (info.fmt) {
          case Fmt::R:
            w = insertBits(w, 13, 7, inst.src1);
            w = insertBits(w, 20, 14, inst.src2);
            break;
          case Fmt::I:
            w = insertBits(w, 13, 7, inst.src1);
            w = insertBits(w, 31, 14, uimm);
            break;
          case Fmt::S:
          case Fmt::B:
            w = insertBits(w, 13, 7, inst.src1);
            w = insertBits(w, 20, 14, inst.src2);
            w = insertBits(w, 31, 21, uimm);
            break;
          case Fmt::U:
            w = insertBits(w, 26, 7, uimm);
            break;
          case Fmt::J:
            w = insertBits(w, 31, 7, uimm);
            break;
          case Fmt::None:
            break;
        }
        break;
      case Isa::Clockhands:
        switch (info.fmt) {
          case Fmt::R:
            w = insertBits(w, 8, 7, inst.dst);
            w = insertBits(w, 10, 9, inst.src1Hand);
            w = insertBits(w, 14, 11, inst.src1);
            w = insertBits(w, 16, 15, inst.src2Hand);
            w = insertBits(w, 20, 17, inst.src2);
            break;
          case Fmt::I:
            w = insertBits(w, 8, 7, inst.dst);
            w = insertBits(w, 10, 9, inst.src1Hand);
            w = insertBits(w, 14, 11, inst.src1);
            w = insertBits(w, 31, 15, uimm);
            break;
          case Fmt::S:
          case Fmt::B:
            w = insertBits(w, 8, 7, inst.src1Hand);
            w = insertBits(w, 12, 9, inst.src1);
            w = insertBits(w, 14, 13, inst.src2Hand);
            w = insertBits(w, 18, 15, inst.src2);
            w = insertBits(w, 31, 19, uimm);
            break;
          case Fmt::U:
            w = insertBits(w, 8, 7, inst.dst);
            w = insertBits(w, 28, 9, uimm);
            break;
          case Fmt::J:
            w = insertBits(w, 8, 7, inst.dst);
            w = insertBits(w, 31, 9, uimm);
            break;
          case Fmt::None:
            break;
        }
        break;
    }
    return w;
}

Inst
decode(Isa isa, uint32_t word)
{
    const uint32_t opIdx = bits(word, 6, 0);
    if (opIdx >= static_cast<uint32_t>(kNumOps))
        fatal("bad opcode ", opIdx, " in word ", word);

    Inst inst;
    inst.op = static_cast<Op>(opIdx);
    const OpInfo& info = inst.info();
    const unsigned width = immWidth(isa, info.fmt);

    auto takeImm = [&](unsigned hi, unsigned lo) {
        int64_t v = signExtend(bits(word, hi, lo), width);
        if (isScaled(info))
            v <<= 2;
        inst.imm = v;
    };

    switch (isa) {
      case Isa::Riscv: {
        const uint8_t dstClass = info.fpDst() ? 32 : 0;
        const uint8_t s1Class = info.fpSrc1() ? 32 : 0;
        const uint8_t s2Class = info.fpSrc2() ? 32 : 0;
        switch (info.fmt) {
          case Fmt::R:
            inst.dst = bits(word, 11, 7) | dstClass;
            inst.src1 = bits(word, 16, 12) | s1Class;
            inst.src2 = bits(word, 21, 17) | s2Class;
            break;
          case Fmt::I:
            inst.dst = bits(word, 11, 7) | dstClass;
            inst.src1 = bits(word, 16, 12) | s1Class;
            takeImm(31, 17);
            break;
          case Fmt::S:
          case Fmt::B:
            inst.src1 = bits(word, 11, 7) | s1Class;
            inst.src2 = bits(word, 16, 12) | s2Class;
            takeImm(31, 17);
            break;
          case Fmt::U:
          case Fmt::J:
            inst.dst = bits(word, 11, 7) | dstClass;
            takeImm(31, 12);
            break;
          case Fmt::None:
            break;
        }
        break;
      }
      case Isa::Straight:
        switch (info.fmt) {
          case Fmt::R:
            inst.src1 = bits(word, 13, 7);
            inst.src2 = bits(word, 20, 14);
            break;
          case Fmt::I:
            inst.src1 = bits(word, 13, 7);
            takeImm(31, 14);
            break;
          case Fmt::S:
          case Fmt::B:
            inst.src1 = bits(word, 13, 7);
            inst.src2 = bits(word, 20, 14);
            takeImm(31, 21);
            break;
          case Fmt::U:
            takeImm(26, 7);
            break;
          case Fmt::J:
            takeImm(31, 7);
            break;
          case Fmt::None:
            break;
        }
        break;
      case Isa::Clockhands:
        switch (info.fmt) {
          case Fmt::R:
            inst.dst = bits(word, 8, 7);
            inst.src1Hand = bits(word, 10, 9);
            inst.src1 = bits(word, 14, 11);
            inst.src2Hand = bits(word, 16, 15);
            inst.src2 = bits(word, 20, 17);
            break;
          case Fmt::I:
            inst.dst = bits(word, 8, 7);
            inst.src1Hand = bits(word, 10, 9);
            inst.src1 = bits(word, 14, 11);
            takeImm(31, 15);
            break;
          case Fmt::S:
          case Fmt::B:
            inst.src1Hand = bits(word, 8, 7);
            inst.src1 = bits(word, 12, 9);
            inst.src2Hand = bits(word, 14, 13);
            inst.src2 = bits(word, 18, 15);
            takeImm(31, 19);
            break;
          case Fmt::U:
            inst.dst = bits(word, 8, 7);
            takeImm(28, 9);
            break;
          case Fmt::J:
            inst.dst = bits(word, 8, 7);
            takeImm(31, 9);
            break;
          case Fmt::None:
            break;
        }
        break;
    }
    return inst;
}

std::string
riscRegName(uint8_t reg)
{
    static const char* names[32] = {
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
        "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
        "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
        "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
    };
    if (reg < 32)
        return names[reg];
    return "f" + std::to_string(reg - 32);
}

namespace {

/** Render one source operand in the target ISA's syntax. */
std::string
srcText(Isa isa, uint8_t dist, uint8_t hand)
{
    switch (isa) {
      case Isa::Riscv:
        return riscRegName(dist);
      case Isa::Straight:
        if (dist == kStraightZeroDist)
            return "zero";
        if (dist == kStraightSpBase)
            return "sp";
        return "[" + std::to_string(dist) + "]";
      case Isa::Clockhands:
        if (hand == HandS && dist == kHandZeroDist)
            return "zero";
        return std::string(1, handName(hand)) + "[" + std::to_string(dist) +
               "]";
    }
    return "?";
}

std::string
dstText(Isa isa, const Inst& inst)
{
    switch (isa) {
      case Isa::Riscv:
        return riscRegName(inst.dst);
      case Isa::Straight:
        return {};
      case Isa::Clockhands:
        return std::string(1, handName(inst.dst));
    }
    return "?";
}

} // namespace

std::string
disassemble(Isa isa, const Inst& inst)
{
    const OpInfo& info = inst.info();
    std::string out(info.mnemonic);
    auto sep = [&] { out += out.size() > info.mnemonic.size() ? ", " : " "; };

    const std::string dst = dstText(isa, inst);
    const std::string s1 = srcText(isa, inst.src1, inst.src1Hand);
    const std::string s2 = srcText(isa, inst.src2, inst.src2Hand);

    switch (info.fmt) {
      case Fmt::R:
        if (info.hasDst && !dst.empty()) { sep(); out += dst; }
        if (info.numSrcs >= 1) { sep(); out += s1; }
        if (info.numSrcs >= 2) { sep(); out += s2; }
        break;
      case Fmt::I:
        if (info.hasDst && !dst.empty()) { sep(); out += dst; }
        if (info.isLoad() || info.brKind == BrKind::IndCall ||
            info.brKind == BrKind::Ret) {
            sep();
            out += std::to_string(inst.imm) + "(" + s1 + ")";
        } else {
            if (info.numSrcs >= 1) { sep(); out += s1; }
            if (inst.op != Op::MV) {
                sep();
                out += std::to_string(inst.imm);
            }
        }
        break;
      case Fmt::S:
        sep();
        out += s2;
        sep();
        out += std::to_string(inst.imm) + "(" + s1 + ")";
        break;
      case Fmt::B:
        sep(); out += s1;
        sep(); out += s2;
        sep(); out += std::to_string(inst.imm);
        break;
      case Fmt::U:
        if (info.hasDst && !dst.empty()) { sep(); out += dst; }
        sep();
        out += std::to_string(inst.imm);
        break;
      case Fmt::J:
        if (info.hasDst && !dst.empty()) { sep(); out += dst; }
        sep();
        out += std::to_string(inst.imm);
        break;
      case Fmt::None:
        break;
    }
    return out;
}

} // namespace ch
