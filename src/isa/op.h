#ifndef CH_ISA_OP_H
#define CH_ISA_OP_H

/**
 * @file
 * The shared micro-operation vocabulary used by all three instruction set
 * architectures in this repository (conventional RISC, STRAIGHT, and
 * Clockhands). Following the paper's Fig. 5, the three ISAs share opcode
 * and funct semantics and differ *only* in how register operands are
 * specified; this header captures the shared part.
 *
 * The operation set is an RV64G-flavoured subset: full 64-bit integer
 * ALU/multiply/divide including the *W 32-bit variants, double-precision
 * floating point, sized loads/stores, conditional branches, and
 * jump-and-link control transfer. A handful of explicit ops (MV, NOP,
 * ECALL, SPADDI) exist so that the paper's instruction-mix breakdowns
 * (Fig. 15) can be measured identically across ISAs.
 */

#include <array>
#include <cstdint>
#include <string_view>

namespace ch {

/** Coarse operation classes: functional-unit binding and Fig. 15 rows. */
enum class OpClass : uint8_t {
    IntAlu,   ///< single-cycle integer ALU
    IntMul,   ///< integer multiplier
    IntDiv,   ///< integer divider
    FpAlu,    ///< FP add/mul/compare/convert
    FpDiv,    ///< FP divide / sqrt
    Load,     ///< memory read
    Store,    ///< memory write
    CondBr,   ///< conditional branch
    Jump,     ///< unconditional direct jump (no link)
    Call,     ///< jump-and-link (direct or indirect)
    Ret,      ///< indirect jump without link (function return)
    Move,     ///< register-to-register copy
    Nop,      ///< no operation
    Syscall,  ///< environment call
};

/** Control-transfer kind; None for non-branches. */
enum class BrKind : uint8_t {
    None,
    Cond,     ///< conditional, PC-relative
    Jump,     ///< unconditional direct, no link
    Call,     ///< direct jump-and-link
    IndCall,  ///< indirect jump-and-link (JALR)
    Ret,      ///< indirect jump, no link (JR)
};

/** Instruction word format family (operand field layout). */
enum class Fmt : uint8_t {
    R,    ///< two register sources
    I,    ///< one register source + immediate
    S,    ///< store / compare-style: two sources + immediate
    B,    ///< conditional branch: two sources + pc-relative offset
    U,    ///< destination + 20-bit upper immediate
    J,    ///< jump: optional link destination + pc-relative offset
    None, ///< no operands (NOP)
};

/** Per-op boolean property bits. */
enum OpFlags : uint8_t {
    FlagLoad = 1 << 0,
    FlagStore = 1 << 1,
    FlagSignedLoad = 1 << 2,
    FlagFpDst = 1 << 3,   ///< RISC destination is an FP register
    FlagFpSrc1 = 1 << 4,  ///< RISC src1 is an FP register
    FlagFpSrc2 = 1 << 5,  ///< RISC src2 is an FP register
};

// X-macro table of every operation.
// Columns: op, mnemonic, class, format, #srcs, hasDst, memBytes, flags, brkind
#define CH_OP_LIST(X)                                                         \
    X(ADD,      "add",      IntAlu, R, 2, 1, 0, 0, None)                      \
    X(SUB,      "sub",      IntAlu, R, 2, 1, 0, 0, None)                      \
    X(SLL,      "sll",      IntAlu, R, 2, 1, 0, 0, None)                      \
    X(SLT,      "slt",      IntAlu, R, 2, 1, 0, 0, None)                      \
    X(SLTU,     "sltu",     IntAlu, R, 2, 1, 0, 0, None)                      \
    X(XOR,      "xor",      IntAlu, R, 2, 1, 0, 0, None)                      \
    X(SRL,      "srl",      IntAlu, R, 2, 1, 0, 0, None)                      \
    X(SRA,      "sra",      IntAlu, R, 2, 1, 0, 0, None)                      \
    X(OR,       "or",       IntAlu, R, 2, 1, 0, 0, None)                      \
    X(AND,      "and",      IntAlu, R, 2, 1, 0, 0, None)                      \
    X(ADDW,     "addw",     IntAlu, R, 2, 1, 0, 0, None)                      \
    X(SUBW,     "subw",     IntAlu, R, 2, 1, 0, 0, None)                      \
    X(SLLW,     "sllw",     IntAlu, R, 2, 1, 0, 0, None)                      \
    X(SRLW,     "srlw",     IntAlu, R, 2, 1, 0, 0, None)                      \
    X(SRAW,     "sraw",     IntAlu, R, 2, 1, 0, 0, None)                      \
    X(MUL,      "mul",      IntMul, R, 2, 1, 0, 0, None)                      \
    X(MULH,     "mulh",     IntMul, R, 2, 1, 0, 0, None)                      \
    X(MULHU,    "mulhu",    IntMul, R, 2, 1, 0, 0, None)                      \
    X(DIV,      "div",      IntDiv, R, 2, 1, 0, 0, None)                      \
    X(DIVU,     "divu",     IntDiv, R, 2, 1, 0, 0, None)                      \
    X(REM,      "rem",      IntDiv, R, 2, 1, 0, 0, None)                      \
    X(REMU,     "remu",     IntDiv, R, 2, 1, 0, 0, None)                      \
    X(MULW,     "mulw",     IntMul, R, 2, 1, 0, 0, None)                      \
    X(DIVW,     "divw",     IntDiv, R, 2, 1, 0, 0, None)                      \
    X(DIVUW,    "divuw",    IntDiv, R, 2, 1, 0, 0, None)                      \
    X(REMW,     "remw",     IntDiv, R, 2, 1, 0, 0, None)                      \
    X(REMUW,    "remuw",    IntDiv, R, 2, 1, 0, 0, None)                      \
    X(ADDI,     "addi",     IntAlu, I, 1, 1, 0, 0, None)                      \
    X(SLTI,     "slti",     IntAlu, I, 1, 1, 0, 0, None)                      \
    X(SLTIU,    "sltiu",    IntAlu, I, 1, 1, 0, 0, None)                      \
    X(XORI,     "xori",     IntAlu, I, 1, 1, 0, 0, None)                      \
    X(ORI,      "ori",      IntAlu, I, 1, 1, 0, 0, None)                      \
    X(ANDI,     "andi",     IntAlu, I, 1, 1, 0, 0, None)                      \
    X(SLLI,     "slli",     IntAlu, I, 1, 1, 0, 0, None)                      \
    X(SRLI,     "srli",     IntAlu, I, 1, 1, 0, 0, None)                      \
    X(SRAI,     "srai",     IntAlu, I, 1, 1, 0, 0, None)                      \
    X(ADDIW,    "addiw",    IntAlu, I, 1, 1, 0, 0, None)                      \
    X(SLLIW,    "slliw",    IntAlu, I, 1, 1, 0, 0, None)                      \
    X(SRLIW,    "srliw",    IntAlu, I, 1, 1, 0, 0, None)                      \
    X(SRAIW,    "sraiw",    IntAlu, I, 1, 1, 0, 0, None)                      \
    X(LUI,      "lui",      IntAlu, U, 0, 1, 0, 0, None)                      \
    X(LB,       "lb",       Load, I, 1, 1, 1, FlagLoad | FlagSignedLoad, None)\
    X(LH,       "lh",       Load, I, 1, 1, 2, FlagLoad | FlagSignedLoad, None)\
    X(LW,       "lw",       Load, I, 1, 1, 4, FlagLoad | FlagSignedLoad, None)\
    X(LD,       "ld",       Load, I, 1, 1, 8, FlagLoad | FlagSignedLoad, None)\
    X(LBU,      "lbu",      Load, I, 1, 1, 1, FlagLoad, None)                 \
    X(LHU,      "lhu",      Load, I, 1, 1, 2, FlagLoad, None)                 \
    X(LWU,      "lwu",      Load, I, 1, 1, 4, FlagLoad, None)                 \
    X(FLD,      "fld",      Load, I, 1, 1, 8, FlagLoad | FlagFpDst, None)     \
    X(SB,       "sb",       Store, S, 2, 0, 1, FlagStore, None)               \
    X(SH,       "sh",       Store, S, 2, 0, 2, FlagStore, None)               \
    X(SW,       "sw",       Store, S, 2, 0, 4, FlagStore, None)               \
    X(SD,       "sd",       Store, S, 2, 0, 8, FlagStore, None)               \
    X(FSD,      "fsd",      Store, S, 2, 0, 8, FlagStore | FlagFpSrc2, None)  \
    X(BEQ,      "beq",      CondBr, B, 2, 0, 0, 0, Cond)                      \
    X(BNE,      "bne",      CondBr, B, 2, 0, 0, 0, Cond)                      \
    X(BLT,      "blt",      CondBr, B, 2, 0, 0, 0, Cond)                      \
    X(BGE,      "bge",      CondBr, B, 2, 0, 0, 0, Cond)                      \
    X(BLTU,     "bltu",     CondBr, B, 2, 0, 0, 0, Cond)                      \
    X(BGEU,     "bgeu",     CondBr, B, 2, 0, 0, 0, Cond)                      \
    X(JAL,      "jal",      Call, J, 0, 1, 0, 0, Call)                        \
    X(J,        "j",        Jump, J, 0, 0, 0, 0, Jump)                        \
    X(JALR,     "jalr",     Call, I, 1, 1, 0, 0, IndCall)                     \
    X(JR,       "jr",       Ret, I, 1, 0, 0, 0, Ret)                          \
    X(FADD_D,   "fadd.d",   FpAlu, R, 2, 1, 0,                                \
      FlagFpDst | FlagFpSrc1 | FlagFpSrc2, None)                              \
    X(FSUB_D,   "fsub.d",   FpAlu, R, 2, 1, 0,                                \
      FlagFpDst | FlagFpSrc1 | FlagFpSrc2, None)                              \
    X(FMUL_D,   "fmul.d",   FpAlu, R, 2, 1, 0,                                \
      FlagFpDst | FlagFpSrc1 | FlagFpSrc2, None)                              \
    X(FDIV_D,   "fdiv.d",   FpDiv, R, 2, 1, 0,                                \
      FlagFpDst | FlagFpSrc1 | FlagFpSrc2, None)                              \
    X(FSQRT_D,  "fsqrt.d",  FpDiv, R, 1, 1, 0, FlagFpDst | FlagFpSrc1, None)  \
    X(FMIN_D,   "fmin.d",   FpAlu, R, 2, 1, 0,                                \
      FlagFpDst | FlagFpSrc1 | FlagFpSrc2, None)                              \
    X(FMAX_D,   "fmax.d",   FpAlu, R, 2, 1, 0,                                \
      FlagFpDst | FlagFpSrc1 | FlagFpSrc2, None)                              \
    X(FSGNJ_D,  "fsgnj.d",  FpAlu, R, 2, 1, 0,                                \
      FlagFpDst | FlagFpSrc1 | FlagFpSrc2, None)                              \
    X(FSGNJN_D, "fsgnjn.d", FpAlu, R, 2, 1, 0,                                \
      FlagFpDst | FlagFpSrc1 | FlagFpSrc2, None)                              \
    X(FSGNJX_D, "fsgnjx.d", FpAlu, R, 2, 1, 0,                                \
      FlagFpDst | FlagFpSrc1 | FlagFpSrc2, None)                              \
    X(FEQ_D,    "feq.d",    FpAlu, R, 2, 1, 0, FlagFpSrc1 | FlagFpSrc2, None) \
    X(FLT_D,    "flt.d",    FpAlu, R, 2, 1, 0, FlagFpSrc1 | FlagFpSrc2, None) \
    X(FLE_D,    "fle.d",    FpAlu, R, 2, 1, 0, FlagFpSrc1 | FlagFpSrc2, None) \
    X(FCVT_D_L, "fcvt.d.l", FpAlu, R, 1, 1, 0, FlagFpDst, None)               \
    X(FCVT_L_D, "fcvt.l.d", FpAlu, R, 1, 1, 0, FlagFpSrc1, None)              \
    X(FMV_X_D,  "fmv.x.d",  Move, R, 1, 1, 0, FlagFpSrc1, None)               \
    X(FMV_D_X,  "fmv.d.x",  Move, R, 1, 1, 0, FlagFpDst, None)                \
    X(FMV_D,    "fmv.d",    Move, R, 1, 1, 0, FlagFpDst | FlagFpSrc1, None)   \
    X(MV,       "mv",       Move, I, 1, 1, 0, 0, None)                        \
    X(NOP,      "nop",      Nop, None, 0, 0, 0, 0, None)                      \
    X(ECALL,    "ecall",    Syscall, I, 1, 1, 0, 0, None)                     \
    X(SPADDI,   "spaddi",   IntAlu, J, 0, 0, 0, 0, None)

/** All shared micro-operations. */
enum class Op : uint8_t {
#define X(op, str, cls, fmt, nsrc, hasdst, mem, flags, br) op,
    CH_OP_LIST(X)
#undef X
};

/** Number of distinct ops. */
constexpr int kNumOps = 0
#define X(op, str, cls, fmt, nsrc, hasdst, mem, flags, br) +1
    CH_OP_LIST(X)
#undef X
    ;

/** Static properties of one op. */
struct OpInfo {
    std::string_view mnemonic;
    OpClass cls;
    Fmt fmt;
    uint8_t numSrcs;    ///< register sources actually read (0..2)
    bool hasDst;        ///< produces a register value
    uint8_t memBytes;   ///< access size for loads/stores, else 0
    uint8_t flags;      ///< OpFlags bitmask
    BrKind brKind;

    // constexpr so engines templated over Op can branch on these at
    // compile time (if constexpr) from the kOpInfoTable constant below.
    constexpr bool isLoad() const { return flags & FlagLoad; }
    constexpr bool isStore() const { return flags & FlagStore; }
    constexpr bool isMem() const { return flags & (FlagLoad | FlagStore); }
    constexpr bool isSignedLoad() const { return flags & FlagSignedLoad; }
    constexpr bool fpDst() const { return flags & FlagFpDst; }
    constexpr bool fpSrc1() const { return flags & FlagFpSrc1; }
    constexpr bool fpSrc2() const { return flags & FlagFpSrc2; }
    constexpr bool isBranch() const { return brKind != BrKind::None; }
    /** Direct control transfer (target known from the instruction word). */
    constexpr bool
    isDirectBranch() const
    {
        return brKind == BrKind::Cond || brKind == BrKind::Jump ||
               brKind == BrKind::Call;
    }
    /** Indirect control transfer (target from a register). */
    constexpr bool
    isIndirectBranch() const
    {
        return brKind == BrKind::IndCall || brKind == BrKind::Ret;
    }
};

/**
 * The OpInfo table as a compile-time constant. opInfo() below indexes
 * this same table; it lives in the header so code templated over Op
 * (the threaded emulator engine's handler generators) can fold an op's
 * properties at compile time instead of loading them per instruction.
 */
inline constexpr std::array<OpInfo, kNumOps> kOpInfoTable = {{
#define X(op, str, cls, fmt, nsrc, hasdst, mem, flags, br)                    \
    OpInfo{str, OpClass::cls, Fmt::fmt, nsrc, hasdst != 0, mem,               \
           static_cast<uint8_t>(flags), BrKind::br},
    CH_OP_LIST(X)
#undef X
}};

/** Properties lookup for @p op. */
const OpInfo& opInfo(Op op);

/** Mnemonic for @p op. */
std::string_view opName(Op op);

} // namespace ch

#endif // CH_ISA_OP_H
