#ifndef CH_ISA_ISA_H
#define CH_ISA_ISA_H

/**
 * @file
 * The three instruction set architectures and the decoded instruction
 * record shared by the assemblers, emulators, and the timing model.
 *
 * Operand conventions (paper Sections 2-4):
 *
 *  - RISC (RV64-flavoured): `dst`, `src1`, `src2` are logical register
 *    numbers. 0..31 are integer registers (x0 reads as zero and discards
 *    writes); 32..63 are FP registers f0..f31.
 *
 *  - STRAIGHT: every executed instruction implicitly allocates one
 *    destination slot from a single ring of logical registers, whether or
 *    not it produces a value (slots of valueless instructions read as 0).
 *    `src1`/`src2` hold inter-instruction distances: k >= 1 means "the
 *    result of the k-th previous instruction"; the encoding 0 means the
 *    constant zero. The architectural stack pointer is a separate special
 *    register manipulated by SPADDI and usable as a memory base (the
 *    `kStraightSpBase` operand encoding).
 *
 *  - Clockhands: four register groups ("hands") named t, u, v, s. `dst`
 *    holds a hand id for value-producing ops; valueless ops rotate no
 *    hand. Sources pair a hand id (`src1Hand`/`src2Hand`) with an
 *    inter-register distance (`src1`/`src2`): distance k refers to the
 *    value written to that hand k+1 writes ago, i.e. t[0] is the newest
 *    value in t. The encoding s[15] reads as the constant zero, matching
 *    the paper's 63-register + zero architectural state.
 */

#include <cstdint>
#include <string_view>

#include "isa/op.h"

namespace ch {

/** Which instruction set a program or machine uses. */
enum class Isa : uint8_t { Riscv, Straight, Clockhands };

/** Human-readable ISA name. */
inline std::string_view
isaName(Isa isa)
{
    switch (isa) {
      case Isa::Riscv: return "RISC-V";
      case Isa::Straight: return "STRAIGHT";
      case Isa::Clockhands: return "Clockhands";
    }
    return "?";
}

// ---------------------------------------------------------------------
// Architectural constants (paper Section 4).
// ---------------------------------------------------------------------

/** Clockhands: number of hands (H = 4, Section 4.1). */
constexpr int kNumHands = 4;

/** Clockhands hand ids, in the paper's naming. */
enum Hand : uint8_t { HandT = 0, HandU = 1, HandV = 2, HandS = 3 };

/** Clockhands: maximum reference distance per hand (D = 16). */
constexpr int kHandDepth = 16;

/**
 * Clockhands: the s-hand reaches only 15 values; the encoding s[15] is
 * the architectural zero register.
 */
constexpr uint8_t kHandZeroDist = 15;

/**
 * STRAIGHT: maximum reference distance. The paper's configuration has 127
 * uniform logical registers; our 7-bit distance field reserves encoding 0
 * for the zero register and encoding 127 for the special SP, leaving
 * distances 1..126.
 */
constexpr int kStraightMaxDist = 126;

/** STRAIGHT: source-distance encoding 0 reads the constant zero. */
constexpr uint8_t kStraightZeroDist = 0;

/**
 * STRAIGHT: source encoding that reads the special stack pointer, used
 * both as a memory base and as a plain operand (the real STRAIGHT ISA has
 * SP-relative memory ops; see Fig. 1(c) "sd [4], 0(sp)").
 */
constexpr uint8_t kStraightSpBase = 0x7f;

/** RISC: number of integer / FP logical registers. */
constexpr int kNumIntRegs = 32;
constexpr int kNumFpRegs = 32;

/** RISC logical register numbering helpers. */
constexpr uint8_t kRegZero = 0;
constexpr uint8_t kRegRa = 1;
constexpr uint8_t kRegSp = 2;
constexpr uint8_t
fpReg(int n)
{
    return static_cast<uint8_t>(32 + n);
}
constexpr bool
isFpRegNum(uint8_t r)
{
    return r >= 32;
}

/** Hand name for disassembly. */
inline char
handName(uint8_t hand)
{
    constexpr char names[kNumHands] = {'t', 'u', 'v', 's'};
    return hand < kNumHands ? names[hand] : '?';
}

// ---------------------------------------------------------------------
// Decoded instruction record.
// ---------------------------------------------------------------------

/**
 * One decoded instruction. Field meaning depends on the program's ISA as
 * described in the file comment. The record is the working currency of
 * the whole stack: the assemblers produce it, the encoders serialize it
 * to 32-bit words, the emulators execute it, and the compiler backends
 * emit it.
 */
struct Inst {
    Op op = Op::NOP;
    uint8_t dst = 0;       ///< RISC: reg; Clockhands: hand; STRAIGHT: unused
    uint8_t src1 = 0;      ///< RISC: reg; STRAIGHT/CH: distance
    uint8_t src2 = 0;      ///< RISC: reg; STRAIGHT/CH: distance
    uint8_t src1Hand = 0;  ///< Clockhands only
    uint8_t src2Hand = 0;  ///< Clockhands only
    int64_t imm = 0;

    const OpInfo& info() const { return opInfo(op); }
};

} // namespace ch

#endif // CH_ISA_ISA_H
