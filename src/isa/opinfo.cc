#include "isa/op.h"

#include "common/logging.h"

namespace ch {

const OpInfo&
opInfo(Op op)
{
    const auto idx = static_cast<size_t>(op);
    CH_DASSERT(idx < kOpInfoTable.size(), "bad op index");
    return kOpInfoTable[idx];
}

std::string_view
opName(Op op)
{
    return opInfo(op).mnemonic;
}

} // namespace ch
