#include "isa/op.h"

#include <array>

#include "common/logging.h"

namespace ch {

namespace {

constexpr std::array<OpInfo, kNumOps> kOpTable = {{
#define X(op, str, cls, fmt, nsrc, hasdst, mem, flags, br)                    \
    OpInfo{str, OpClass::cls, Fmt::fmt, nsrc, hasdst != 0, mem,               \
           static_cast<uint8_t>(flags), BrKind::br},
    CH_OP_LIST(X)
#undef X
}};

} // namespace

const OpInfo&
opInfo(Op op)
{
    const auto idx = static_cast<size_t>(op);
    CH_DASSERT(idx < kOpTable.size(), "bad op index");
    return kOpTable[idx];
}

std::string_view
opName(Op op)
{
    return opInfo(op).mnemonic;
}

} // namespace ch
