/**
 * @file
 * Widths explorer: run one benchmark through the cycle-level model on
 * every Table 2 machine and print IPC, misprediction rate, and the
 * energy breakdown -- a miniature of the paper's Figs. 13/14 for a single
 * workload. Pass a workload name (coremark/bzip2/mcf/lbm/xz) as argv[1].
 */

#include <cstdio>
#include <cstring>

#include "energy/energy_model.h"
#include "uarch/sim.h"
#include "workloads/workloads.h"

using namespace ch;

int
main(int argc, char** argv)
{
    const char* name = argc > 1 ? argv[1] : "coremark";
    const auto& w = workload(name);
    std::printf("workload: %s -- %s\n\n", w.name.c_str(),
                w.description.c_str());

    std::printf("%-11s %5s %10s %8s %7s %9s %12s\n", "isa", "width",
                "cycles", "IPC", "MPKI", "energy", "renamer-share");
    double base = 0;
    for (int width : {4, 6, 8, 12, 16}) {
        MachineConfig cfg = MachineConfig::preset(width);
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            SimResult r =
                simulate(compiledWorkload(w.name, isa), cfg);
            EnergyBreakdown e = computeEnergy(cfg, isa, r.stats);
            if (base == 0)
                base = e.total();
            const double mpki =
                1000.0 *
                static_cast<double>(r.stats.value("branch.mispredicts")) /
                static_cast<double>(r.insts);
            std::printf("%-11s %5d %10lu %8.2f %7.2f %8.2fx %11.1f%%\n",
                        std::string(isaName(isa)).c_str(), width,
                        (unsigned long)r.cycles, r.ipc(), mpki,
                        e.total() / base,
                        100.0 * e.at(EnergyComp::Renamer) / e.total());
        }
        std::printf("\n");
    }
    std::printf("energy is normalized to the first row (4-fetch "
                "RISC-V)\n");
    return 0;
}
