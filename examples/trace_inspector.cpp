/**
 * @file
 * Trace inspector: attach the trace-analysis sinks to a workload and
 * print a one-page profile: instruction mix, register-lifetime summary,
 * hand usage (Clockhands), and the STRAIGHT-conversion lower bound --
 * the measurement toolkit of the paper's Sections 2 and 7 on one screen.
 * Pass a workload name as argv[1] (default: xz).
 */

#include <cstdio>

#include "emu/emulator.h"
#include "trace/analyzers.h"
#include "workloads/workloads.h"

using namespace ch;

int
main(int argc, char** argv)
{
    const char* name = argc > 1 ? argv[1] : "xz";
    const auto& w = workload(name);
    std::printf("workload: %s -- %s\n\n", w.name.c_str(),
                w.description.c_str());

    // One emulator pass per ISA with fanned-out analyzers.
    for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
        const Program& prog = compiledWorkload(w.name, isa);
        MixAnalyzer mix;
        LifetimeAnalyzer lifetime(isa);
        HandUsageAnalyzer hands;
        TeeSink tee;
        tee.add(&mix);
        tee.add(&lifetime);
        if (isa == Isa::Clockhands)
            tee.add(&hands);

        RunResult r = runProgram(prog, ~0ull, &tee);
        lifetime.finish();

        std::printf("---- %s: %lu instructions ----\n",
                    std::string(isaName(isa)).c_str(),
                    (unsigned long)r.instCount);
        std::printf("  mix:");
        for (int c = 0; c < static_cast<int>(MixCat::kCount); ++c) {
            const auto cat = static_cast<MixCat>(c);
            if (mix.count(cat) == 0)
                continue;
            std::printf(" %s=%.1f%%",
                        std::string(mixCatName(cat)).c_str(),
                        100.0 * mix.count(cat) / mix.total());
        }
        std::printf("\n  lifetimes: %.2e of defs live >= 1K insts, "
                    "%.2e live >= 64K\n",
                    lifetime.overall().ccdf(10, r.instCount),
                    lifetime.overall().ccdf(16, r.instCount));
        if (isa == Isa::Clockhands) {
            std::printf("  hand writes per inst: t=%.2f u=%.2f v=%.3f "
                        "s=%.3f\n",
                        (double)hands.writes(HandT) / hands.total(),
                        (double)hands.writes(HandU) / hands.total(),
                        (double)hands.writes(HandV) / hands.total(),
                        (double)hands.writes(HandS) / hands.total());
        }
    }

    // STRAIGHT-conversion lower bound on the RISC trace (Fig. 3 method).
    const Program& riscProg = compiledWorkload(w.name, Isa::Riscv);
    RelayAnalyzer relay(riscProg);
    runProgram(riscProg, ~0ull, &relay);
    RelayReport rep = relay.finish();
    std::printf("\nSTRAIGHT-conversion lower bound on the RISC trace: "
                "+%.1f%% (nop %.1f%%, maxdist %.1f%%, loopconst %.1f%%)\n",
                100.0 * rep.increaseFraction(),
                100.0 * rep.nopConvergence / rep.totalInsts,
                100.0 * rep.mvMaxDistance / rep.totalInsts,
                100.0 * rep.mvLoopConstant / rep.totalInsts);
    return 0;
}
