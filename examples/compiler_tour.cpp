/**
 * @file
 * Compiler tour: take one MiniC function through the full pipeline
 * (Fig. 10) and print the three resulting machine programs side by side,
 * with the hand assignment the Clockhands backend chose (Section 6.2).
 * This regenerates the paper's Fig. 1 comparison from source.
 */

#include <cstdio>

#include "backend/backend.h"
#include "emu/emulator.h"
#include "frontc/codegen.h"
#include "isa/encoding.h"

using namespace ch;

namespace {

const char* kSource = R"(
    long data[64];
    void iota(long* arr, long n) {
        long i;
        for (i = 0; i < n; i = i + 1)
            arr[i] = i;
    }
    int main() {
        iota(data, 64);
        long sum = 0;
        for (long i = 0; i < 64; ++i) sum += data[i];
        return (int)(sum & 127);
    }
)";

void
dumpFunction(Isa isa, const char* name)
{
    Program p = compileMiniC(kSource, isa);
    const uint64_t start = p.symbol(name);
    std::printf("---- %s: %s ----\n", std::string(isaName(isa)).c_str(),
                name);
    // Print until the final return of the function (heuristic: stop at
    // the next function symbol).
    uint64_t end = p.textBase + 4 * p.numInsts();
    for (const auto& [sym, addr] : p.symbols) {
        if (addr > start && addr < end && sym[0] != '.')
            end = addr;
    }
    int count = 0;
    for (uint64_t pc = start; pc < end; pc += 4, ++count) {
        std::printf("  %s\n", disassemble(isa, p.instAt(pc)).c_str());
    }
    std::printf("  (%d instructions)\n\n", count);
}

} // namespace

int
main()
{
    std::printf("MiniC source:\n%s\n", kSource);

    // Shared front end: one VCode module for all three backends.
    VModule mod = compileToVCode(kSource);
    const VFunc* iota = mod.findFunc("iota");
    std::printf("==== shared VCode (front end + instruction select) "
                "====\n%s\n", dumpVFunc(*iota).c_str());

    // The Clockhands-specific phase: hand assignment (Algorithm 1).
    HandPlan plan = assignHands(*iota);
    std::printf("==== hand assignment for iota ====\n");
    for (int v = 0; v < iota->numVRegs; ++v) {
        if (plan.inMemory[v]) {
            std::printf("  v%-3d -> stack memory\n", v);
        } else {
            std::printf("  v%-3d -> %c hand%s\n", v,
                        handName(plan.handOf[v]),
                        plan.isLoopConstant[v] ? "  (loop constant)" : "");
        }
    }
    std::printf("\n");

    dumpFunction(Isa::Riscv, "iota");
    dumpFunction(Isa::Straight, "iota");
    dumpFunction(Isa::Clockhands, "iota");

    // And of course all three must agree.
    for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
        RunResult r = runProgram(compileMiniC(kSource, isa));
        std::printf("%s: exit=%ld after %lu instructions\n",
                    std::string(isaName(isa)).c_str(), (long)r.exitCode,
                    (unsigned long)r.instCount);
    }
    return 0;
}
