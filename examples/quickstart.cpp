/**
 * @file
 * Quickstart: assemble the paper's Fig. 1 iota kernel for all three ISAs,
 * run each on the functional emulator, and print what happened. This is
 * the 5-minute tour of the library's public API:
 *
 *   assemble()  -> Program          (asm/assembler.h)
 *   Emulator    -> architectural run (emu/emulator.h)
 *   disassemble() for readable dumps (isa/encoding.h)
 */

#include <cstdio>

#include "asm/assembler.h"
#include "emu/emulator.h"
#include "isa/encoding.h"

using namespace ch;

namespace {

// The three assemblies of Fig. 1 (iota: arr[i] = i for i in 0..N-1),
// adapted to this repository's runnable conventions.
const char* kRiscv = R"(
    .data
arr: .zero 40
    .text
    la a0, arr
    li a1, 10
    addi a5, zero, 0
loop:
    sw a5, 0(a0)
    addiw a5, a5, 1
    addi a0, a0, 4
    bne a1, a5, loop
    ecall zero, zero, 0
)";

const char* kStraight = R"(
    .data
arr: .zero 40
    .text
    la arr
    li 10
    addi zero, 0
    j loop
loop:
    sw [2], 0([4])
    addiw [3], 1
    addi [6], 4
    mv [6]
    mv [3]
    bne [1], [2], loop
    ecall zero, 0
)";

const char* kClockhands = R"(
    .data
arr: .zero 40
    .text
    la u, arr
    addi t, zero, 0
    mv t, u[0]
    addi v, zero, 10
loop:
    sw t[1], 0(t[0])
    addiw t, t[1], 1
    addi t, t[1], 4
    bne t[1], v[0], loop
    ecall t, zero, 0
)";

void
runOne(Isa isa, const char* src)
{
    std::printf("---- %s ----\n", std::string(isaName(isa)).c_str());
    Program prog = assemble(isa, src);

    std::printf("assembled %zu instructions:\n", prog.numInsts());
    for (size_t i = 0; i < prog.numInsts(); ++i) {
        std::printf("  %05lx:  %08x  %s\n",
                    (unsigned long)(prog.textBase + 4 * i), prog.text[i],
                    disassemble(isa, prog.decoded[i]).c_str());
    }

    Emulator emu(prog);
    RunResult result = emu.run();
    std::printf("executed %lu instructions, exited=%d\n",
                (unsigned long)result.instCount, result.exited);

    std::printf("arr = [");
    for (int i = 0; i < 10; ++i) {
        std::printf("%s%lu", i ? ", " : "",
                    (unsigned long)emu.memory().read(
                        prog.symbol("arr") + 4 * i, 4));
    }
    std::printf("]\n\n");
}

} // namespace

int
main()
{
    std::printf("Clockhands quickstart: the paper's Fig. 1 iota kernel on "
                "all three ISAs\n\n");
    runOne(Isa::Riscv, kRiscv);
    runOne(Isa::Straight, kStraight);
    runOne(Isa::Clockhands, kClockhands);
    std::printf("note the STRAIGHT version needs relay mv instructions "
                "every iteration;\nClockhands keeps its loop constant in "
                "the v hand, which never rotates.\n");
    return 0;
}
