#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "asm/assembler.h"
#include "common/logging.h"
#include "emu/emulator.h"
#include "emu/lockstep.h"

namespace ch {
namespace {

/** Assemble, run to completion, and return the result. */
RunResult
runAsm(Isa isa, const std::string& src, uint64_t maxInsts = 1'000'000)
{
    Program p = assemble(isa, src);
    RunResult r = runProgram(p, maxInsts);
    EXPECT_TRUE(r.exited) << "program did not exit";
    return r;
}

// ---------------------------------------------------------------------
// The paper's Fig. 1 iota kernel, expressed for each ISA, must produce
// identical memory contents. This is the core cross-ISA differential
// test for the register models.
// ---------------------------------------------------------------------

TEST(Emulator, IotaRiscv)
{
    Program p = assemble(Isa::Riscv, R"(
        .data
    arr: .zero 40
        .text
        la a0, arr
        li a1, 10
        addi a5, zero, 0
    loop:
        sw a5, 0(a0)
        addiw a5, a5, 1
        addi a0, a0, 4
        bne a1, a5, loop
        ecall zero, zero, 0
    )");
    Emulator emu(p);
    RunResult r = emu.run();
    EXPECT_TRUE(r.exited);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(emu.memory().read(p.symbol("arr") + 4 * i, 4),
                  static_cast<uint64_t>(i));
}

TEST(Emulator, IotaClockhands)
{
    // Fig. 1(d) structure: loop constants live in v and never move while
    // the loop rotates only t.
    Program p = assemble(Isa::Clockhands, R"(
        .data
    arr: .zero 40
        .text
        la u, arr
        addi t, zero, 0      # t[0] = i
        mv t, u[0]           # t[0] = &arr[i], t[1] = i
        addi v, zero, 10     # v[0] = N
    loop:
        sw t[1], 0(t[0])
        addiw t, t[1], 1     # new i
        addi t, t[1], 4      # new &arr[i]
        bne t[1], v[0], loop
        ecall t, zero, 0
    )");
    Emulator emu(p);
    RunResult r = emu.run();
    EXPECT_TRUE(r.exited);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(emu.memory().read(p.symbol("arr") + 4 * i, 4),
                  static_cast<uint64_t>(i));
}

TEST(Emulator, IotaStraight)
{
    // Every instruction (including sw, j, bne) occupies one ring slot;
    // relay mv instructions re-establish the loop frame each iteration,
    // exactly the overhead the paper describes in Fig. 2(a).
    Program p = assemble(Isa::Straight, R"(
        .data
    arr: .zero 40
        .text
        la arr               # lui; addi -> &arr
        li 10                # N
        addi zero, 0         # i = 0
        j loop
        # loop-top frame: [1]=jump/branch slot, [2]=i, [3]=N, [4]=&arr[i]
    loop:
        sw [2], 0([4])
        addiw [3], 1         # i'
        addi [6], 4          # &arr[i+1]
        mv [6]               # relay N
        mv [3]               # relay i'
        bne [1], [2], loop
        ecall zero, 0
    )");
    Emulator emu(p);
    RunResult r = emu.run();
    EXPECT_TRUE(r.exited);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(emu.memory().read(p.symbol("arr") + 4 * i, 4),
                  static_cast<uint64_t>(i));
}

// ---------------------------------------------------------------------
// ALU semantics spot checks (RISC carrier, semantics shared by all ISAs).
// ---------------------------------------------------------------------

/** Run a snippet that leaves its result in a0, then report it. */
int64_t
evalRisc(const std::string& body)
{
    Program p = assemble(Isa::Riscv, body + "\n ecall zero, a0, 0\n");
    Emulator emu(p);
    RunResult r = emu.run();
    EXPECT_TRUE(r.exited);
    return r.exitCode;
}

TEST(Emulator, IntegerArithmetic)
{
    EXPECT_EQ(evalRisc("li a0, 40\n addi a0, a0, 2"), 42);
    EXPECT_EQ(evalRisc("li a0, 7\n li a1, -3\n mul a0, a0, a1"), -21);
    EXPECT_EQ(evalRisc("li a0, -7\n li a1, 2\n div a0, a0, a1"), -3);
    EXPECT_EQ(evalRisc("li a0, -7\n li a1, 2\n rem a0, a0, a1"), -1);
    EXPECT_EQ(evalRisc("li a0, 7\n li a1, 0\n div a0, a0, a1"), -1);
    EXPECT_EQ(evalRisc("li a0, 7\n li a1, 0\n rem a0, a0, a1"), 7);
    EXPECT_EQ(evalRisc("li a0, 1\n slli a0, a0, 40"), 1ll << 40);
    EXPECT_EQ(evalRisc("li a0, -8\n srai a0, a0, 1"), -4);
    EXPECT_EQ(evalRisc("li a0, -8\n li a1, 1\n srl a0, a0, a1"),
              static_cast<int64_t>(static_cast<uint64_t>(-8) >> 1));
    EXPECT_EQ(evalRisc("li a0, 5\n li a1, 9\n slt a0, a0, a1"), 1);
    EXPECT_EQ(evalRisc("li a0, -5\n li a1, 9\n sltu a0, a0, a1"), 0);
    EXPECT_EQ(evalRisc("li a0, 0xff\n andi a0, a0, 0x0f"), 0x0f);
    EXPECT_EQ(evalRisc("li a0, 0xf0\n ori a0, a0, 0x0f"), 0xff);
    EXPECT_EQ(evalRisc("li a0, 0xff\n xori a0, a0, 0x0f"), 0xf0);
}

TEST(Emulator, Word32Arithmetic)
{
    // addiw wraps at 32 bits and sign-extends.
    EXPECT_EQ(evalRisc("li a0, 0x7fffffff\n addiw a0, a0, 1"),
              -2147483648ll);
    EXPECT_EQ(evalRisc("li a0, 0x80000000\n li a1, 0\n addw a0, a0, a1"),
              -2147483648ll);
    EXPECT_EQ(evalRisc("li a0, -2\n li a1, 3\n mulw a0, a0, a1"), -6);
    EXPECT_EQ(evalRisc("li a0, 1\n slliw a0, a0, 31"), -2147483648ll);
}

TEST(Emulator, MulhVariants)
{
    EXPECT_EQ(evalRisc("li a0, -1\n li a1, -1\n mulh a0, a0, a1"), 0);
    EXPECT_EQ(evalRisc("li a0, -1\n li a1, -1\n mulhu a0, a0, a1"), -2);
}

TEST(Emulator, LoadStoreSizes)
{
    const std::string pre = R"(
        .data
    buf: .zero 16
        .text
        la a1, buf
    )";
    EXPECT_EQ(evalRisc(pre + "li a0, -1\n sb a0, 0(a1)\n lbu a0, 0(a1)"),
              255);
    EXPECT_EQ(evalRisc(pre + "li a0, -1\n sb a0, 0(a1)\n lb a0, 0(a1)"), -1);
    EXPECT_EQ(evalRisc(pre + "li a0, 0x1234\n sh a0, 2(a1)\n lhu a0, 2(a1)"),
              0x1234);
    EXPECT_EQ(
        evalRisc(pre + "li a0, -2\n sw a0, 4(a1)\n lwu a0, 4(a1)"),
        0xfffffffell);
    EXPECT_EQ(evalRisc(pre + "li a0, -2\n sw a0, 4(a1)\n lw a0, 4(a1)"), -2);
    EXPECT_EQ(
        evalRisc(pre +
                 "li a0, 0x123456789abcdef0\n sd a0, 8(a1)\n ld a0, 8(a1)"),
        0x123456789abcdef0ll);
}

TEST(Emulator, FloatingPoint)
{
    // 1.5 + 2.25 = 3.75 -> x10 -> 37 (integer conversion truncates 37.5).
    EXPECT_EQ(evalRisc(R"(
        li a0, 3
        fcvt.d.l f0, a0
        li a0, 2
        fcvt.d.l f1, a0
        fdiv.d f0, f0, f1       # 1.5
        li a0, 9
        fcvt.d.l f2, a0
        li a0, 4
        fcvt.d.l f3, a0
        fdiv.d f2, f2, f3       # 2.25
        fadd.d f0, f0, f2       # 3.75
        li a0, 10
        fcvt.d.l f1, a0
        fmul.d f0, f0, f1       # 37.5
        fcvt.l.d a0, f0
    )"), 37);
    EXPECT_EQ(evalRisc(R"(
        li a0, 16
        fcvt.d.l f0, a0
        fsqrt.d f0, f0
        fcvt.l.d a0, f0
    )"), 4);
    EXPECT_EQ(evalRisc(R"(
        li a0, 2
        fcvt.d.l f0, a0
        li a0, 3
        fcvt.d.l f1, a0
        flt.d a0, f0, f1
    )"), 1);
    // fsgnjn: negate.
    EXPECT_EQ(evalRisc(R"(
        li a0, 5
        fcvt.d.l f0, a0
        fsgnjn.d f0, f0, f0
        fcvt.l.d a0, f0
    )"), -5);
}

TEST(Emulator, CallAndReturnRiscv)
{
    EXPECT_EQ(evalRisc(R"(
        li a0, 20
        call double_it
        call double_it
        j done
    double_it:
        add a0, a0, a0
        ret
    done:
        nop
    )"), 80);
}

TEST(Emulator, PutcharOutput)
{
    RunResult r = runAsm(Isa::Riscv, R"(
        li a0, 72
        ecall zero, a0, 1
        li a0, 105
        ecall zero, a0, 1
        ecall zero, zero, 0
    )");
    EXPECT_EQ(r.output, "Hi");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(Emulator, ClockhandsSHandZeroAndRing)
{
    // Fill t beyond its depth and verify wraparound freshness.
    Program p = assemble(Isa::Clockhands, R"(
        addi t, zero, 1
        addi t, t[0], 1
        addi t, t[0], 1
        addi t, t[0], 1
        ecall t, t[0], 0
    )");
    Emulator emu(p);
    RunResult r = emu.run();
    EXPECT_EQ(r.exitCode, 4);
}

TEST(Emulator, ClockhandsHandsAreIndependent)
{
    // Writes to u must not rotate t: t[0] still reads the last t write.
    Program p = assemble(Isa::Clockhands, R"(
        addi t, zero, 7
        addi u, zero, 100
        addi u, zero, 101
        addi u, zero, 102
        ecall t, t[0], 0
    )");
    EXPECT_EQ(runProgram(p).exitCode, 7);
}

TEST(Emulator, StraightEveryInstructionTakesASlot)
{
    // The sw and j occupy slots, so the addi result sits at distance 3.
    Program p = assemble(Isa::Straight, R"(
        .data
    buf: .zero 8
        .text
        la buf
        addi zero, 55
        sw [1], 0([2])
        j next
    next:
        ecall [3], 0
    )");
    EXPECT_EQ(runProgram(p).exitCode, 55);
}

TEST(Emulator, StraightSpecialSp)
{
    Program p = assemble(Isa::Straight, R"(
        spaddi -16
        addi zero, 99
        sd [1], 8(sp)
        ld 8(sp)
        spaddi 16
        ecall [2], 0
    )");
    EXPECT_EQ(runProgram(p).exitCode, 99);
}

TEST(Emulator, StopsAtMaxInsts)
{
    Program p = assemble(Isa::Riscv, R"(
    spin:
        j spin
    )");
    RunResult r = runProgram(p, 1000);
    EXPECT_FALSE(r.exited);
    EXPECT_EQ(r.instCount, 1000u);
}

// ---------------------------------------------------------------------
// Trace-sink integration: producer annotations.
// ---------------------------------------------------------------------

class Collect : public TraceSink
{
  public:
    void onInst(const DynInst& di) override { insts.push_back(di); }
    std::vector<DynInst> insts;
};

TEST(Emulator, ProducerTracking)
{
    Program p = assemble(Isa::Riscv, R"(
        li a0, 5            # seq 0
        li a1, 6            # seq 1
        add a2, a0, a1      # seq 2: prod1=0, prod2=1
        add a2, a2, a0      # seq 3: prod1=2, prod2=0
        add a3, zero, a2    # seq 4: prod1=none, prod2=3
        ecall zero, zero, 0
    )");
    Collect sink;
    runProgram(p, ~0ull, &sink);
    ASSERT_GE(sink.insts.size(), 6u);
    EXPECT_EQ(sink.insts[2].prod1, 0u);
    EXPECT_EQ(sink.insts[2].prod2, 1u);
    EXPECT_EQ(sink.insts[3].prod1, 2u);
    EXPECT_EQ(sink.insts[3].prod2, 0u);
    EXPECT_EQ(sink.insts[4].prod1, kNoProducer);
    EXPECT_EQ(sink.insts[4].prod2, 3u);
}

TEST(Emulator, ProducerTrackingClockhands)
{
    Program p = assemble(Isa::Clockhands, R"(
        addi t, zero, 5     # seq 0
        addi u, zero, 6     # seq 1
        add t, t[0], u[0]   # seq 2: prod1=0, prod2=1
        add t, t[0], t[1]   # seq 3: prod1=2, prod2=0
        ecall t, zero, 0
    )");
    Collect sink;
    runProgram(p, ~0ull, &sink);
    EXPECT_EQ(sink.insts[2].prod1, 0u);
    EXPECT_EQ(sink.insts[2].prod2, 1u);
    EXPECT_EQ(sink.insts[3].prod1, 2u);
    EXPECT_EQ(sink.insts[3].prod2, 0u);
}

// ---------------------------------------------------------------------
// Threaded-engine block-cache edge cases (docs/EMULATOR.md). Every case
// also runs the DualEngineRunner so the whole observable surface — not
// just the spot-checked value — is compared against the switch oracle.
// ---------------------------------------------------------------------

/** Both engines must agree on the program; returns the oracle result. */
RunResult
expectEnginesAgree(const Program& p, uint64_t maxInsts = 10'000'000)
{
    DualEngineRunner runner(p);
    const LockstepReport rep = runner.run(maxInsts);
    EXPECT_TRUE(rep.ok) << rep.divergence;

    Emulator oracle(p, EmuEngine::Switch);
    return oracle.run(maxInsts);
}

/** @p n copies of `addi a0, a0, 1` followed by an exit-with-a0 ecall. */
Program
straightLineProgram(size_t n)
{
    std::ostringstream os;
    for (size_t i = 0; i < n; ++i)
        os << "addi a0, a0, 1\n";
    os << "ecall zero, a0, 0\n";
    return assemble(Isa::Riscv, os.str());
}

TEST(ThreadedEngine, SelfTerminatingBlockPastPageBoundary)
{
    // 1030 straight-line adds push the text across the 0x11000 page
    // boundary: the decode-cap chain places one fallthrough block edge
    // exactly on the boundary (inst 1024) and the final self-terminating
    // ecall block just past it.
    Program p = straightLineProgram(1030);
    ASSERT_GT(p.textBase + 4 * p.numInsts(),
              (p.textBase + Memory::kPageSize) & ~Memory::kPageMask);

    Emulator emu(p, EmuEngine::Threaded);
    RunResult r = emu.run();
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, 1030);
    // 8 full 128-instruction blocks + the terminating block.
    EXPECT_EQ(emu.decodedBlocks(), 9u);
    EXPECT_EQ(emu.decodedInsts(), 1031u);
    EXPECT_EQ(emu.blockRedecodes(), 0u);

    EXPECT_EQ(expectEnginesAgree(p).exitCode, 1030);
}

TEST(ThreadedEngine, MaxLengthBlocksChainWithoutTerminators)
{
    // A run shorter than one page but longer than kMaxBlockInsts still
    // splits into length-capped fallthrough blocks.
    Program p = straightLineProgram(300);
    Emulator emu(p, EmuEngine::Threaded);
    RunResult r = emu.run();
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, 300);
    EXPECT_EQ(emu.decodedBlocks(), 3u);  // 128 + 128 + 45

    EXPECT_EQ(expectEnginesAgree(p).exitCode, 300);
}

TEST(ThreadedEngine, TextEndWithoutTerminatorFatalsIdentically)
{
    // Control running off the end of the text must produce the same
    // fatal() message (pc and executed-instruction count included) from
    // both engines.
    Program p = assemble(Isa::Riscv, R"(
        li a0, 5
        addi a0, a0, 1
    )");
    std::string msg[2];
    int i = 0;
    for (EmuEngine eng : {EmuEngine::Switch, EmuEngine::Threaded}) {
        Emulator emu(p, eng);
        try {
            emu.run();
            FAIL() << "expected fatal() running off the text end";
        } catch (const FatalError& e) {
            msg[i] = e.what();
        }
        ++i;
    }
    EXPECT_FALSE(msg[0].empty());
    EXPECT_EQ(msg[0], msg[1]);
}

TEST(ThreadedEngine, IndirectTargetIntoMiddleOfCachedBlock)
{
    // The first pass caches [head..bne] as one block; the jalr then
    // lands in its interior, which must decode a fresh overlapping
    // block rather than corrupt or miss the cached one.
    Program p = assemble(Isa::Riscv, R"(
        la t0, mid
        li s0, 0
    head:
        addi a0, a0, 1
    mid:
        addi a0, a0, 10
        addi a0, a0, 100
        bne s0, zero, done
        li s0, 1
        jalr ra, 0(t0)
    done:
        ecall zero, a0, 0
    )");
    Emulator emu(p, EmuEngine::Threaded);
    RunResult r = emu.run();
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, 221);  // 1+10+100 on pass one, 10+100 via mid
    // entry..bne, li/jalr, the overlapping block at mid, and done.
    EXPECT_EQ(emu.decodedBlocks(), 4u);

    EXPECT_EQ(expectEnginesAgree(p).exitCode, 221);
}

TEST(ThreadedEngine, BlockCacheBudgetOverflowFallsBackToRedecode)
{
    // With a budget smaller than any block, every dispatch re-decodes
    // into scratch storage; results must not change.
    Program p = straightLineProgram(300);
    Emulator emu(p, EmuEngine::Threaded);
    emu.setBlockCacheBudget(8);
    RunResult r = emu.run();
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, 300);
    EXPECT_EQ(emu.decodedBlocks(), 0u);
    EXPECT_GT(emu.blockRedecodes(), 0u);
}

TEST(ThreadedEngine, MidRunEngineSwitchContinuesSeamlessly)
{
    // Both engines drive the same architectural state, so a paused run
    // can hop between them at any chunk edge without a visible seam.
    Program p = assemble(Isa::Riscv, R"(
        li a0, 0
        li a1, 5000
    loop:
        addi a0, a0, 1
        andi a2, a0, 1023
        bne a2, zero, noput
        addi a2, a0, 64
        ecall zero, a2, 1
    noput:
        bne a0, a1, loop
        ecall zero, a0, 0
    )");
    Emulator ref(p, EmuEngine::Switch);
    RunResult expect = ref.run();
    ASSERT_TRUE(expect.exited);

    Emulator emu(p, EmuEngine::Threaded);
    std::string output;
    RunResult r;
    int hops = 0;
    while (!emu.done()) {
        r = emu.run(997);
        output += r.output;
        emu.setEngine(++hops % 2 ? EmuEngine::Switch
                                 : EmuEngine::Threaded);
    }
    EXPECT_EQ(r.exitCode, expect.exitCode);
    EXPECT_EQ(r.instCount, expect.instCount);
    EXPECT_EQ(output, expect.output);
    EXPECT_GT(hops, 2);
}

TEST(Emulator, BranchOutcomeInTrace)
{
    Program p = assemble(Isa::Riscv, R"(
        li a0, 2
    loop:
        addi a0, a0, -1
        bne a0, zero, loop
        ecall zero, zero, 0
    )");
    Collect sink;
    runProgram(p, ~0ull, &sink);
    int taken = 0, notTaken = 0;
    for (const auto& di : sink.insts) {
        if (di.op == Op::BNE)
            (di.taken ? taken : notTaken)++;
    }
    EXPECT_EQ(taken, 1);
    EXPECT_EQ(notTaken, 1);
}

} // namespace
} // namespace ch
