#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "analyze/cfg.h"
#include "analyze/loops.h"
#include "asm/assembler.h"
#include "emu/emulator.h"
#include "trace/trace_buffer.h"
#include "uarch/core.h"
#include "uarch/pipe_trace.h"
#include "workloads/workloads.h"

namespace ch {
namespace {

analyze::ProgramReport
analyzeAsm(Isa isa, const std::string& src)
{
    const Program p = assemble(isa, src);
    return analyze::analyzeProgram(p, MachineConfig::preset(8));
}

bool
hasLint(const analyze::ProgramReport& rep, analyze::LintKind kind)
{
    return std::any_of(rep.lints.begin(), rep.lints.end(),
                       [&](const analyze::Lint& l) {
                           return l.kind == kind;
                       });
}

// ---------------------------------------------------------------------
// Shared CFG library (also exercised indirectly by every verify test).
// ---------------------------------------------------------------------

TEST(AnalyzeCfg, CarvesBlocksInRpo)
{
    const Program p = assemble(Isa::Riscv, R"(
        addi a0, zero, 10
    loop:
        addi a0, a0, -1
        bnez a0, loop
        ecall zero, a0, 0
    )");
    const cfg::BinFunc fn = cfg::buildBinFunc(p, 0);
    EXPECT_TRUE(fn.problems.empty());
    ASSERT_EQ(fn.blocks.size(), 3u);
    // RPO: entry first; every instruction mapped to exactly one block.
    EXPECT_EQ(fn.blocks[0].first, 0);
    for (size_t i = 0; i < p.numInsts(); ++i)
        EXPECT_GE(fn.blockOfInst[i], 0) << "inst " << i;
    // The loop block branches both to itself and to the exit block.
    const int loopBlk = fn.blockOfInst[1];
    EXPECT_EQ(fn.blocks[static_cast<size_t>(loopBlk)].succs.size(), 2u);
}

TEST(AnalyzeCfg, ReportsBadTargetAndFallOffEnd)
{
    const Program bad = assemble(Isa::Straight,
                                 "j 1000\n"
                                 "ecall zero, 0\n");
    const cfg::BinFunc fnBad = cfg::buildBinFunc(bad, 0);
    ASSERT_FALSE(fnBad.problems.empty());
    EXPECT_EQ(fnBad.problems[0].kind, cfg::CfgProblemKind::BadTarget);
    EXPECT_EQ(fnBad.problems[0].instIndex, 0u);

    const Program off = assemble(Isa::Straight, "addi zero, 1\n");
    const cfg::BinFunc fnOff = cfg::buildBinFunc(off, 0);
    ASSERT_FALSE(fnOff.problems.empty());
    EXPECT_EQ(fnOff.problems[0].kind, cfg::CfgProblemKind::FallOffEnd);
}

TEST(AnalyzeCfg, MalformedProgramStillAnalyzes)
{
    // analyzeProgram must degrade gracefully: report the structural
    // defect, keep whatever loops are still well-formed, never throw.
    const analyze::ProgramReport rep = analyzeAsm(Isa::Straight,
                                                  "j 1000\n"
                                                  "ecall zero, 0\n");
    EXPECT_FALSE(rep.ok());
    EXPECT_GT(rep.cfgProblems, 0u);
}

// ---------------------------------------------------------------------
// Natural-loop reconstruction
// ---------------------------------------------------------------------

TEST(AnalyzeLoops, FindsNestedLoopsWithDepth)
{
    const Program p = assemble(Isa::Riscv, R"(
        addi a0, zero, 10
    outer:
        addi a1, zero, 10
    inner:
        addi a1, a1, -1
        bnez a1, inner
        addi a0, a0, -1
        bnez a0, outer
        ecall zero, a0, 0
    )");
    const cfg::BinFunc fn = cfg::buildBinFunc(p, 0);
    const std::vector<analyze::Loop> loops = analyze::findLoops(p, fn);
    ASSERT_EQ(loops.size(), 2u);
    const analyze::Loop* outer = nullptr;
    const analyze::Loop* inner = nullptr;
    for (const analyze::Loop& l : loops)
        (l.depth == 1 ? outer : inner) = &l;
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_FALSE(outer->innermost);
    EXPECT_TRUE(inner->innermost);
    EXPECT_EQ(inner->depth, 2);
    // The inner body nests strictly inside the outer body.
    EXPECT_LT(inner->body.size(), outer->body.size());
}

// ---------------------------------------------------------------------
// Known-bound loops: each constructed so one bound dominates and its
// value is computable by hand from the MachineConfig tables.
// ---------------------------------------------------------------------

TEST(AnalyzeBounds, DependenceChainBound)
{
    // mul carries a1 across iterations: 3-cycle IntMul latency per trip
    // around the recurrence, far above every resource bound of the
    // 3-instruction body on an 8-wide machine.
    const analyze::ProgramReport rep = analyzeAsm(Isa::Riscv, R"(
        addi a0, zero, 100
        addi a1, zero, 1
    loop:
        mul a1, a1, a0
        addi a0, a0, -1
        bnez a0, loop
        ecall zero, a1, 0
    )");
    ASSERT_EQ(rep.loops.size(), 1u);
    const analyze::LoopReport& lp = rep.loops[0];
    EXPECT_EQ(lp.bodyInsts(), 3u);
    EXPECT_NEAR(lp.latencyCycles, 3.0, 1e-6);
    EXPECT_NEAR(lp.resourceCycles, 1.0, 1e-6);
    EXPECT_NEAR(lp.cyclesPerIter, 3.0, 1e-6);
    EXPECT_NEAR(lp.predictedIpc, 1.0, 1e-6);
    EXPECT_EQ(lp.bottleneck, analyze::Bottleneck::DepChain);
    EXPECT_EQ(lp.bottleneckName(), "depchain");
}

TEST(AnalyzeBounds, FuPoolBound)
{
    // Four independent muls per iteration against a single IntMul unit:
    // the pool needs 4 cycles/iteration while no dependence chain grows
    // (every mul reads the loop-invariant a1).
    const analyze::ProgramReport rep = analyzeAsm(Isa::Riscv, R"(
        addi a0, zero, 100
        addi a1, zero, 3
    loop:
        mul a2, a1, a1
        mul a3, a1, a1
        mul a4, a1, a1
        mul a5, a1, a1
        addi a0, a0, -1
        bnez a0, loop
        ecall zero, a2, 0
    )");
    ASSERT_EQ(rep.loops.size(), 1u);
    const analyze::LoopReport& lp = rep.loops[0];
    const int mulPool = analyze::fuPoolId(OpClass::IntMul);
    EXPECT_NEAR(lp.fuCycles[mulPool], 4.0, 1e-6);
    EXPECT_NEAR(lp.cyclesPerIter, 4.0, 1e-6);
    EXPECT_NEAR(lp.predictedIpc, 6.0 / 4.0, 1e-6);
    EXPECT_EQ(lp.bottleneck, analyze::Bottleneck::Fu);
    EXPECT_EQ(lp.bottleneckName(), "fu.iMul");
}

TEST(AnalyzeBounds, FrontendBoundTinyLoop)
{
    // A 2-instruction counted loop: the backward-taken branch ends the
    // fetch group every iteration, so the front end needs one full
    // cycle for 2 instructions — above the issue/commit/ALU shares.
    const analyze::ProgramReport rep = analyzeAsm(Isa::Riscv, R"(
        addi a0, zero, 100
    loop:
        addi a0, a0, -1
        bnez a0, loop
        ecall zero, a0, 0
    )");
    ASSERT_EQ(rep.loops.size(), 1u);
    const analyze::LoopReport& lp = rep.loops[0];
    EXPECT_NEAR(lp.fetchCycles, 1.0, 1e-6);
    EXPECT_NEAR(lp.cyclesPerIter, 1.0, 1e-6);
    EXPECT_NEAR(lp.predictedIpc, 2.0, 1e-6);
    EXPECT_EQ(lp.bottleneck, analyze::Bottleneck::Frontend);
}

TEST(AnalyzeBounds, ClockhandsHandRecurrence)
{
    // The same 3-cycle mul recurrence expressed through hand t's ring:
    // the hand/distance dataflow must resolve t[0] to the previous
    // iteration's write.
    const analyze::ProgramReport rep = analyzeAsm(Isa::Clockhands, R"(
        addi u, zero, 100
        addi t, zero, 1
    loop:
        mul t, t[0], u[0]
        addi u, u[0], -1
        bnez u[0], loop
        ecall t, zero, 0
    )");
    ASSERT_EQ(rep.loops.size(), 1u);
    const analyze::LoopReport& lp = rep.loops[0];
    EXPECT_NEAR(lp.latencyCycles, 3.0, 1e-6);
    EXPECT_EQ(lp.bottleneck, analyze::Bottleneck::DepChain);
}

TEST(AnalyzeBounds, StraightRingRecurrence)
{
    // STRAIGHT: every instruction allocates a ring slot, so the counter
    // written 2 slots back ([2] at the addi) carries the recurrence.
    const analyze::ProgramReport rep = analyzeAsm(Isa::Straight, R"(
        addi zero, 100
        j loop
    loop:
        addi [2], -1
        bne [1], [1], loop
        ecall zero, 0
    )");
    ASSERT_EQ(rep.loops.size(), 1u);
    const analyze::LoopReport& lp = rep.loops[0];
    EXPECT_EQ(lp.bodyInsts(), 2u);
    // addi -> next iteration's addi: 1 cycle/iteration.
    EXPECT_NEAR(lp.latencyCycles, 1.0, 1e-6);
    EXPECT_GT(lp.predictedIpc, 0.0);
}

// ---------------------------------------------------------------------
// Lints
// ---------------------------------------------------------------------

TEST(AnalyzeLints, LongLifetimeNearWindowLimit)
{
    // t[13] is within the 2-slot margin of Clockhands' 15-deep window.
    const analyze::ProgramReport rep = analyzeAsm(Isa::Clockhands,
                                                  "addi t, zero, 1\n"
                                                  "add t, t[13], t[13]\n"
                                                  "ecall t, zero, 0\n");
    EXPECT_TRUE(hasLint(rep, analyze::LintKind::LongLifetime));
}

TEST(AnalyzeLints, StraightJunkSlotShare)
{
    // 3 of 4 body slots (two stores + the branch) carry no value.
    const analyze::ProgramReport rep = analyzeAsm(Isa::Straight, R"(
        .data
    x: .zero 8
        .text
        la x
        addi zero, 4
        j loop
    loop:
        sw [1], 0([3])
        sw [2], 0([4])
        addi [3], -1
        bne [1], [1], loop
        ecall zero, 0
    )");
    EXPECT_TRUE(hasLint(rep, analyze::LintKind::JunkSlots));
}

TEST(AnalyzeLints, HandQuotaHotspot)
{
    // Every write of an 8-write loop body lands on hand u, which holds
    // well under half of the physical registers (Table 2 quota).
    const analyze::ProgramReport rep = analyzeAsm(Isa::Clockhands, R"(
        addi u, zero, 100
    loop:
        addi u, u[0], -1
        addi u, u[0], 0
        addi u, u[0], 0
        addi u, u[0], 0
        addi u, u[0], 0
        addi u, u[0], 0
        addi u, u[0], 0
        addi u, u[0], 0
        bnez u[0], loop
        ecall u, zero, 0
    )");
    EXPECT_TRUE(hasLint(rep, analyze::LintKind::HandQuotaHotspot));
}

TEST(AnalyzeLints, CleanRiscLoopHasNoLints)
{
    const analyze::ProgramReport rep = analyzeAsm(Isa::Riscv, R"(
        addi a0, zero, 100
    loop:
        addi a0, a0, -1
        bnez a0, loop
        ecall zero, a0, 0
    )");
    EXPECT_TRUE(rep.lints.empty());
}

// ---------------------------------------------------------------------
// Report formatting
// ---------------------------------------------------------------------

TEST(AnalyzeReport, JsonAndTextShapes)
{
    const Program p = assemble(Isa::Riscv, R"(
        addi a0, zero, 100
    loop:
        addi a0, a0, -1
        bnez a0, loop
        ecall zero, a0, 0
    )");
    const analyze::ProgramReport rep =
        analyze::analyzeProgram(p, MachineConfig::preset(8));
    const std::string json = analyze::reportJson(p, "unit", rep);
    EXPECT_NE(json.find("ch-analyze-report-v1"), std::string::npos);
    EXPECT_NE(json.find("\"loops\""), std::string::npos);
    const std::string text = analyze::formatReport(p, rep, true);
    EXPECT_NE(text.find("loop"), std::string::npos);
}

// ---------------------------------------------------------------------
// Corpus cross-validation: the bench/fig_static_ipc.cc contract in
// miniature. For every (workload, ISA) point, hot regular innermost
// loops must be predicted within a loose per-loop factor, and the
// corpus geomean must stay well inside the 15% CI gate's headroom.
// ---------------------------------------------------------------------

/** Minimal per-loop IPC attribution probe (see bench/fig_static_ipc.cc). */
class LoopProbe : public PipeObserver
{
  public:
    LoopProbe(const Program& prog,
              const std::vector<analyze::LoopReport>& loops)
        : textBase_(prog.textBase),
          cycles_(loops.size(), 0),
          insts_(loops.size(), 0),
          iters_(loops.size(), 0)
    {
        for (const analyze::LoopReport& lp : loops)
            headOf_.push_back(lp.headInst);
        loopOf_.assign(prog.numInsts(), -1);
        for (size_t l = 0; l < loops.size(); ++l) {
            for (const int i : loops[l].body) {
                const int cur = loopOf_[static_cast<size_t>(i)];
                if (cur < 0 ||
                    loops[l].depth >
                        loops[static_cast<size_t>(cur)].depth) {
                    loopOf_[static_cast<size_t>(i)] =
                        static_cast<int>(l);
                }
            }
        }
    }

    void
    onTimedInst(const DynInst& di, const PipeTimes& t) override
    {
        const size_t idx = (di.pc - textBase_) / 4;
        const int l = idx < loopOf_.size() ? loopOf_[idx] : -1;
        if (l >= 0) {
            ++insts_[static_cast<size_t>(l)];
            if (idx == headOf_[static_cast<size_t>(l)])
                ++iters_[static_cast<size_t>(l)];
            if (hasLast_)
                cycles_[static_cast<size_t>(l)] += t.commit - lastCommit_;
        }
        lastCommit_ = t.commit;
        hasLast_ = true;
    }

    uint64_t cycles(size_t l) const { return cycles_[l]; }
    uint64_t insts(size_t l) const { return insts_[l]; }
    uint64_t iters(size_t l) const { return iters_[l]; }

  private:
    uint64_t textBase_;
    std::vector<int> loopOf_;
    std::vector<size_t> headOf_;
    std::vector<uint64_t> cycles_;
    std::vector<uint64_t> insts_;
    std::vector<uint64_t> iters_;
    uint64_t lastCommit_ = 0;
    bool hasLast_ = false;
};

class AnalyzeCorpus
    : public ::testing::TestWithParam<std::tuple<const char*, Isa>>
{
};

TEST_P(AnalyzeCorpus, PredictsHotLoopIpc)
{
    const auto& [name, isa] = GetParam();
    constexpr uint64_t kCap = 500000;
    const Program& p = compiledWorkload(name, isa);
    const MachineConfig cfg = MachineConfig::preset(8);
    const analyze::ProgramReport rep = analyze::analyzeProgram(p, cfg);
    EXPECT_TRUE(rep.ok());
    EXPECT_GT(rep.loops.size(), 0u);

    TraceBuffer trace;
    runProgram(p, kCap, &trace);
    CycleSim core(cfg, isa);
    LoopProbe probe(p, rep.loops);
    core.setPipeObserver(&probe);
    trace.replay(core);
    core.finish();
    const uint64_t total = core.instCount();

    double logSum = 0;
    size_t hot = 0;
    for (size_t l = 0; l < rep.loops.size(); ++l) {
        const analyze::LoopReport& lp = rep.loops[l];
        const uint64_t dyn = probe.insts(l);
        const uint64_t cyc = probe.cycles(l);
        if (!lp.innermost || lp.hasCall || cyc == 0 || dyn < 1000 ||
            static_cast<double>(dyn) < 0.01 * static_cast<double>(total))
            continue;
        const double expected = static_cast<double>(probe.iters(l)) *
                                static_cast<double>(lp.bodyInsts());
        if (expected <= 0 ||
            std::fabs(static_cast<double>(dyn) - expected) >
                0.10 * expected)
            continue;
        const double meas =
            static_cast<double>(dyn) / static_cast<double>(cyc);
        const double err = std::max(lp.predictedIpc, meas) /
                               std::min(lp.predictedIpc, meas) -
                           1.0;
        // No single hot regular loop may be off by more than 2x.
        EXPECT_LT(err, 1.0)
            << name << "/" << isaName(isa) << " loop@" << lp.headInst
            << ": predicted " << lp.predictedIpc << " measured " << meas;
        logSum += std::log1p(err);
        ++hot;
    }
    if (hot > 0) {
        const double geomean = std::expm1(logSum /
                                          static_cast<double>(hot));
        EXPECT_LT(geomean, 0.35)
            << name << "/" << isaName(isa) << ": geomean error over "
            << hot << " hot loops";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, AnalyzeCorpus,
    ::testing::Combine(::testing::Values("coremark", "bzip2", "mcf",
                                         "lbm", "xz"),
                       ::testing::Values(Isa::Riscv, Isa::Straight,
                                         Isa::Clockhands)),
    [](const auto& info) {
        const char* isa = "";
        switch (std::get<1>(info.param)) {
          case Isa::Riscv: isa = "riscv"; break;
          case Isa::Straight: isa = "straight"; break;
          case Isa::Clockhands: isa = "clockhands"; break;
        }
        return std::string(std::get<0>(info.param)) + "_" + isa;
    });

} // namespace
} // namespace ch
