/**
 * @file
 * Differential lockstep suite: every workload's RISC, STRAIGHT, and
 * Clockhands builds are emulated side by side and must agree on every
 * architecturally observable effect:
 *
 *  - the output stream (Sys::Putchar bytes) and the exit value,
 *  - the committed sequence of data/heap stores (address, width, value).
 *
 * The third check is what the static verifier cannot see: a backend bug
 * that corrupts a value flowing into memory shows up here as the first
 * diverging store, long before it scrambles the final checksum.
 *
 * Stack stores are excluded from the comparison: frame layout and spill
 * traffic are legitimately backend-specific, while the data/heap image
 * is defined by the source program alone.
 *
 * The DualEngine suite (`ctest -L lockstep-emu`) is the other axis of
 * differential testing: the same program on the same ISA, executed by
 * the switch interpreter and the predecoded threaded-code engine in
 * lockstep, must match on every DynInst field, every output byte, the
 * full register model at each chunk edge, and — since instruction fetch
 * never touches Memory — the hot-page-cache hit/miss counters.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "emu/emulator.h"
#include "emu/lockstep.h"
#include "trace/dyninst.h"
#include "workloads/workloads.h"

namespace ch {
namespace {

/** Addresses below this are program data/heap; above is stack. */
constexpr uint64_t kStackRegionStart =
    layout::kHeapBase + (layout::kStackTop - layout::kHeapBase) / 2;

struct StoreRec {
    uint64_t addr;
    unsigned bytes;
    uint64_t value;

    bool
    operator==(const StoreRec& o) const
    {
        return addr == o.addr && bytes == o.bytes && value == o.value;
    }
};

/** Records the committed data/heap store sequence of one emulation. */
class StoreRecorder : public TraceSink
{
  public:
    void
    onInst(const DynInst& di) override
    {
        const OpInfo& info = di.info();
        if (!info.isStore() || di.memAddr >= kStackRegionStart)
            return;
        const unsigned bytes = info.memBytes;
        const uint64_t mask =
            bytes == 8 ? ~0ull : (1ull << (8 * bytes)) - 1;
        stores_.push_back({di.memAddr, bytes, di.memValue & mask});
    }

    const std::vector<StoreRec>& stores() const { return stores_; }

  private:
    std::vector<StoreRec> stores_;
};

class Lockstep : public ::testing::TestWithParam<const char*>
{
};

TEST_P(Lockstep, IsasAgreeOnObservablesAndStores)
{
    const char* name = GetParam();
    constexpr uint64_t kCap = 400'000'000;

    RunResult res[3];
    StoreRecorder stores[3];
    const Isa isas[3] = {Isa::Riscv, Isa::Straight, Isa::Clockhands};
    for (int i = 0; i < 3; ++i) {
        res[i] = runProgram(compiledWorkload(name, isas[i]), kCap,
                            &stores[i]);
        ASSERT_TRUE(res[i].exited)
            << name << " did not finish on " << isaName(isas[i]);
    }

    for (int i = 1; i < 3; ++i) {
        SCOPED_TRACE(std::string(name) + ": RISC-V vs " +
                     std::string(isaName(isas[i])));
        EXPECT_EQ(res[0].exitCode, res[i].exitCode);
        EXPECT_EQ(res[0].output, res[i].output);

        const auto& a = stores[0].stores();
        const auto& b = stores[i].stores();
        ASSERT_EQ(a.size(), b.size())
            << "committed data-store counts diverge";
        for (size_t s = 0; s < a.size(); ++s) {
            ASSERT_TRUE(a[s] == b[s])
                << "store #" << s << " diverges: riscv {addr=0x"
                << std::hex << a[s].addr << ", bytes=" << std::dec
                << a[s].bytes << ", value=" << a[s].value << "} vs {addr=0x"
                << std::hex << b[s].addr << ", bytes=" << std::dec
                << b[s].bytes << ", value=" << b[s].value << "}";
        }
    }

    // The workloads are self-validating: a silent no-op run would pass
    // the comparisons above, so require real work happened.
    EXPECT_FALSE(stores[0].stores().empty());
    EXPECT_FALSE(res[0].output.empty());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, Lockstep,
                         ::testing::Values("coremark", "bzip2", "mcf",
                                           "lbm", "xz"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

// ---------------------------------------------------------------------
// Engine-vs-engine lockstep: `ctest -L lockstep-emu`.
// ---------------------------------------------------------------------

/** Test-name-safe ISA tag (isaName() uses '-'). */
const char*
isaSlug(Isa isa)
{
    switch (isa) {
      case Isa::Riscv: return "riscv";
      case Isa::Straight: return "straight";
      case Isa::Clockhands: return "clockhands";
    }
    return "unknown";
}

class DualEngine
    : public ::testing::TestWithParam<std::tuple<const char*, Isa>>
{
};

TEST_P(DualEngine, EnginesAgreeInLockstep)
{
    const auto [name, isa] = GetParam();
    DualEngineRunner runner(compiledWorkload(name, isa));
    const LockstepReport rep = runner.run(1'000'000);
    EXPECT_TRUE(rep.ok) << rep.divergence;
    EXPECT_GT(rep.instsCompared, 0u);
}

TEST_P(DualEngine, PageCacheCountersMatchAcrossEngines)
{
    // The threaded engine must be transparent to the memory system:
    // instruction fetch reads the predecoded text in both engines, so
    // every Memory::pageFor() call comes from an architectural load or
    // store, and bit-identical execution implies identical counters.
    const auto [name, isa] = GetParam();
    const Program& prog = compiledWorkload(name, isa);

    uint64_t hits[2] = {0, 0}, misses[2] = {0, 0};
    int i = 0;
    for (EmuEngine eng : {EmuEngine::Switch, EmuEngine::Threaded}) {
        Emulator emu(prog, eng);
        emu.memory().setPageCacheStatsEnabled(true);
        emu.run(1'000'000);
        hits[i] = emu.memory().pageCacheHits();
        misses[i] = emu.memory().pageCacheMisses();
        ++i;
    }
    EXPECT_EQ(hits[0], hits[1]);
    EXPECT_EQ(misses[0], misses[1]);
    EXPECT_GT(hits[0], 0u) << "no memory traffic measured";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, DualEngine,
    ::testing::Combine(::testing::Values("coremark", "bzip2", "mcf", "lbm",
                                         "xz"),
                       ::testing::Values(Isa::Riscv, Isa::Straight,
                                         Isa::Clockhands)),
    [](const auto& info) {
        return std::string(std::get<0>(info.param)) + "_" +
               isaSlug(std::get<1>(info.param));
    });

} // namespace
} // namespace ch
