#include <gtest/gtest.h>

#include <algorithm>

#include "asm/assembler.h"
#include "emu/emulator.h"
#include "verify/verify.h"
#include "workloads/workloads.h"

namespace ch {
namespace {

/** Assemble and verify a handwritten program. */
VerifyResult
verifyAsm(Isa isa, const std::string& src)
{
    const Program p = assemble(isa, src);
    return verifyProgram(p);
}

bool
hasKind(const VerifyResult& res, IssueKind kind)
{
    return std::any_of(res.issues.begin(), res.issues.end(),
                       [&](const VerifyIssue& i) { return i.kind == kind; });
}

// ---------------------------------------------------------------------
// Negative corpus: handwritten bad assembly, one invariant each. Every
// diagnostic must carry the 1-based source line of the offending read.
// ---------------------------------------------------------------------

TEST(VerifyNegative, StraightReadBeyondWrites)
{
    // [3] at line 2 reaches past the single ring write: never written.
    const VerifyResult res = verifyAsm(Isa::Straight,
                                       "addi zero, 1\n"
                                       "add [1], [3]\n"
                                       "ecall zero, 0\n");
    ASSERT_FALSE(res.ok());
    ASSERT_TRUE(hasKind(res, IssueKind::UninitRead));
    const VerifyIssue& issue = res.issues.front();
    EXPECT_EQ(issue.kind, IssueKind::UninitRead);
    EXPECT_EQ(issue.line, 2);
    EXPECT_EQ(issue.operand, 2);
    EXPECT_EQ(issue.dist, 3);
    EXPECT_EQ(issue.instIndex, 1u);
}

TEST(VerifyNegative, StraightJunkSlotRead)
{
    // The sw at line 5 allocates a valueless slot (paper Section 2.2.1);
    // [1] at line 6 lands on it.
    const VerifyResult res = verifyAsm(Isa::Straight,
                                       ".data\n"           // line 1
                                       "x: .zero 8\n"      // line 2
                                       ".text\n"           // line 3
                                       "addi zero, 7\n"    // line 4
                                       "la x\n"            // line 5 (2 insts)
                                       "sw [3], 0([1])\n"  // line 6: junk slot
                                       "add [1], [1]\n"    // line 7: reads it
                                       "ecall zero, 0\n");
    ASSERT_FALSE(res.ok());
    ASSERT_TRUE(hasKind(res, IssueKind::JunkRead));
    const VerifyIssue& issue = res.issues.front();
    EXPECT_EQ(issue.line, 7);
    EXPECT_NE(issue.detail.find("sw"), std::string::npos)
        << "diagnostic should name the valueless producer: "
        << issue.detail;
}

TEST(VerifyNegative, ClockhandsInconsistentJoinDepth)
{
    // t rotates twice on the fall-through path but only once on the
    // taken path, so t[1] at the join resolves to different producers.
    const VerifyResult res = verifyAsm(Isa::Clockhands,
                                       "addi t, zero, 1\n"    // line 1
                                       "beqz t[0], skip\n"    // line 2
                                       "addi t, zero, 2\n"    // line 3
                                       "skip:\n"              // line 4
                                       "add t, t[1], t[1]\n"  // line 5
                                       "ecall t, zero, 0\n");
    ASSERT_FALSE(res.ok());
    ASSERT_TRUE(hasKind(res, IssueKind::InconsistentJoin));
    const VerifyIssue& issue = res.issues.front();
    EXPECT_EQ(issue.line, 5);
    EXPECT_EQ(issue.hand, HandT);
    EXPECT_EQ(issue.dist, 1);
}

TEST(VerifyNegative, ClockhandsReadStaleAcrossCall)
{
    // t does not survive a call (only v[0..7] and the s results do), so
    // t[0] at line 3 is stale.
    const VerifyResult res = verifyAsm(Isa::Clockhands,
                                       "addi t, zero, 1\n"    // line 1
                                       "call f\n"             // line 2
                                       "add u, t[0], t[0]\n"  // line 3
                                       "ecall u, zero, 0\n"   // line 4
                                       "f:\n"                 // line 5
                                       "addi t, zero, 9\n"    // line 6
                                       "ret s[0]\n");
    ASSERT_FALSE(res.ok());
    ASSERT_TRUE(hasKind(res, IssueKind::ClobberedRead));
    const VerifyIssue& issue = res.issues.front();
    EXPECT_EQ(issue.line, 3);
    EXPECT_EQ(issue.hand, HandT);
}

TEST(VerifyNegative, RiscvUninitializedRead)
{
    const VerifyResult res = verifyAsm(Isa::Riscv,
                                       "add a0, t0, t1\n"
                                       "ecall zero, a0, 0\n");
    ASSERT_FALSE(res.ok());
    EXPECT_TRUE(hasKind(res, IssueKind::UninitRead));
    EXPECT_EQ(res.issues.front().line, 1);
}

TEST(VerifyNegative, RiscvMaybeUninitializedJoin)
{
    // a1 is assigned on one path into skip but not the other.
    const VerifyResult res = verifyAsm(Isa::Riscv,
                                       "li a0, 1\n"          // line 1
                                       "beqz a0, skip\n"     // line 2
                                       "li a1, 5\n"          // line 3
                                       "skip:\n"             // line 4
                                       "add a0, a1, a1\n"    // line 5
                                       "ecall zero, a0, 0\n");
    ASSERT_FALSE(res.ok());
    ASSERT_TRUE(hasKind(res, IssueKind::InconsistentJoin));
    EXPECT_EQ(res.issues.front().line, 5);
}

TEST(VerifyNegative, CfgBadTargetAndFallOffEnd)
{
    const VerifyResult bad = verifyAsm(Isa::Straight,
                                       "j 1000\n"
                                       "ecall zero, 0\n");
    EXPECT_TRUE(hasKind(bad, IssueKind::BadTarget));

    const VerifyResult off = verifyAsm(Isa::Straight, "addi zero, 1\n");
    EXPECT_TRUE(hasKind(off, IssueKind::FallOffEnd));
}

TEST(VerifyNegative, UnknownSyscallNumber)
{
    const VerifyResult res = verifyAsm(Isa::Straight,
                                       "ecall zero, 7\n"
                                       "ecall zero, 0\n");
    EXPECT_TRUE(hasKind(res, IssueKind::UnknownSyscall));
}

TEST(VerifyNegative, DiagnosticsFormatWithLineNumbers)
{
    const Program p = assemble(Isa::Straight,
                               "addi zero, 1\n"
                               "add [1], [3]\n"
                               "ecall zero, 0\n");
    const VerifyResult res = verifyProgram(p);
    ASSERT_FALSE(res.ok());
    const std::string text = formatIssues(p, res);
    EXPECT_NE(text.find("line 2"), std::string::npos) << text;
    EXPECT_NE(text.find("never written"), std::string::npos) << text;
}

// ---------------------------------------------------------------------
// Statistics: dead writes and hand pressure.
// ---------------------------------------------------------------------

TEST(VerifyStats, DeadWriteIsCountedNotDiagnosed)
{
    // t0 is written but never consumed: a statistic, not an error.
    const VerifyResult res = verifyAsm(Isa::Riscv,
                                       "li t0, 99\n"
                                       "li a0, 1\n"
                                       "ecall zero, a0, 0\n");
    EXPECT_TRUE(res.ok());
    EXPECT_GE(res.pressure[0].deadWrites, 1u);
    EXPECT_GE(res.pressure[0].writes, 2u);
}

TEST(VerifyStats, ClockhandsPerHandPressure)
{
    const VerifyResult res = verifyAsm(Isa::Clockhands,
                                       "addi t, zero, 1\n"
                                       "addi v, zero, 2\n"
                                       "add t, t[0], v[0]\n"
                                       "ecall t, t[0], 0\n");
    ASSERT_TRUE(res.ok());
    EXPECT_GE(res.pressure[HandT].writes, 2u);
    EXPECT_GE(res.pressure[HandV].writes, 1u);
    EXPECT_GE(res.pressure[HandT].maxDist, 0);
}

// ---------------------------------------------------------------------
// Positive corpus: handwritten paper kernels and every compiled
// workload x ISA must verify clean.
// ---------------------------------------------------------------------

TEST(VerifyPositive, HandwrittenIotaKernels)
{
    // The Fig. 1 iota kernels from emu_test, one per ISA.
    const VerifyResult risc = verifyAsm(Isa::Riscv, R"(
        .data
    arr: .zero 40
        .text
        la a0, arr
        li a1, 10
        addi a5, zero, 0
    loop:
        sw a5, 0(a0)
        addiw a5, a5, 1
        addi a0, a0, 4
        bne a1, a5, loop
        ecall zero, zero, 0
    )");
    EXPECT_TRUE(risc.ok());

    const VerifyResult ch = verifyAsm(Isa::Clockhands, R"(
        .data
    arr: .zero 40
        .text
        la u, arr
        addi t, zero, 0
        mv t, u[0]
        addi v, zero, 10
    loop:
        sw t[1], 0(t[0])
        addiw t, t[1], 1
        addi t, t[1], 4
        bne t[1], v[0], loop
        ecall t, zero, 0
    )");
    EXPECT_TRUE(ch.ok());

    const VerifyResult st = verifyAsm(Isa::Straight, R"(
        .data
    arr: .zero 40
        .text
        la arr
        li 10
        addi zero, 0
        j loop
    loop:
        sw [2], 0([4])
        addiw [3], 1
        addi [6], 4
        mv [6]
        mv [3]
        bne [1], [2], loop
        ecall zero, 0
    )");
    EXPECT_TRUE(st.ok());
}

class VerifyWorkloads
    : public ::testing::TestWithParam<std::tuple<const char*, Isa>>
{
};

TEST_P(VerifyWorkloads, CompiledOutputVerifiesClean)
{
    const auto& [name, isa] = GetParam();
    const Program& p = compiledWorkload(name, isa);
    const VerifyResult res = verifyProgram(p);
    EXPECT_TRUE(res.ok()) << formatIssues(p, res);
    EXPECT_GT(res.numFuncs, 0u);
    EXPECT_GT(res.numInsts, 0u);
    // Every ISA reads something; distance ISAs must stay in-window.
    uint64_t reads = 0;
    for (const HandPressure& hp : res.pressure)
        reads += hp.reads;
    EXPECT_GT(reads, 0u);
    // Surface dead-write / hand-pressure stats in the ctest logs.
    std::cout << name << ": " << formatPressure(p, res);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, VerifyWorkloads,
    ::testing::Combine(::testing::Values("coremark", "bzip2", "mcf", "lbm",
                                         "xz"),
                       ::testing::Values(Isa::Riscv, Isa::Straight,
                                         Isa::Clockhands)),
    [](const auto& info) {
        const char* isa = "";
        switch (std::get<1>(info.param)) {
          case Isa::Riscv: isa = "riscv"; break;
          case Isa::Straight: isa = "straight"; break;
          case Isa::Clockhands: isa = "clockhands"; break;
        }
        return std::string(std::get<0>(info.param)) + "_" + isa;
    });

} // namespace
} // namespace ch
