#include <gtest/gtest.h>

#include "common/bitutil.h"
#include "common/logging.h"
#include "common/prng.h"
#include "common/stats.h"
#include "common/strutil.h"
#include "common/table.h"

namespace ch {
namespace {

TEST(BitUtil, SignExtend)
{
    EXPECT_EQ(signExtend(0xfff, 12), -1);
    EXPECT_EQ(signExtend(0x7ff, 12), 0x7ff);
    EXPECT_EQ(signExtend(0x800, 12), -2048);
    EXPECT_EQ(signExtend(0xffffffff, 32), -1);
    EXPECT_EQ(signExtend(0x0, 1), 0);
    EXPECT_EQ(signExtend(0x1, 1), -1);
    EXPECT_EQ(signExtend(~0ull, 64), -1);
}

TEST(BitUtil, Bits)
{
    EXPECT_EQ(bits(0xdeadbeef, 31, 28), 0xdu);
    EXPECT_EQ(bits(0xdeadbeef, 3, 0), 0xfu);
    EXPECT_EQ(bits(0xff, 7, 7), 1u);
    EXPECT_EQ(bit(0x80, 7), 1u);
    EXPECT_EQ(bit(0x80, 6), 0u);
}

TEST(BitUtil, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(2047, 12));
    EXPECT_FALSE(fitsSigned(2048, 12));
    EXPECT_TRUE(fitsSigned(-2048, 12));
    EXPECT_FALSE(fitsSigned(-2049, 12));
    EXPECT_TRUE(fitsSigned(0, 1));
    EXPECT_TRUE(fitsSigned(-1, 1));
    EXPECT_FALSE(fitsSigned(1, 1));
}

TEST(BitUtil, InsertBitsRoundTrip)
{
    uint32_t w = 0;
    w = insertBits(w, 6, 0, 0x55);
    w = insertBits(w, 11, 7, 0x1f);
    w = insertBits(w, 31, 12, 0xabcde);
    EXPECT_EQ(bits(w, 6, 0), 0x55u);
    EXPECT_EQ(bits(w, 11, 7), 0x1fu);
    EXPECT_EQ(bits(w, 31, 12), 0xabcdeu);
}

TEST(BitUtil, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(65));
    EXPECT_EQ(alignUp(13, 8), 16u);
    EXPECT_EQ(alignUp(16, 8), 16u);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("boom ", 42), FatalError);
    EXPECT_THROW(panic("bug"), PanicError);
    try {
        fatal("value=", 7);
    } catch (const FatalError& e) {
        EXPECT_STREQ(e.what(), "value=7");
    }
}

TEST(Logging, AssertMacro)
{
    EXPECT_NO_THROW(CH_ASSERT(1 + 1 == 2, "fine"));
    EXPECT_THROW(CH_ASSERT(false, "nope"), PanicError);
}

TEST(Prng, Deterministic)
{
    Prng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, BoundsRespected)
{
    Prng p(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(p.nextBelow(17), 17u);
        double d = p.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Stats, CountersAccumulate)
{
    StatGroup g;
    g.counter("a") += 3;
    ++g.counter("a");
    g.counter("b") += 10;
    EXPECT_EQ(g.value("a"), 4u);
    EXPECT_EQ(g.value("b"), 10u);
    EXPECT_EQ(g.value("missing"), 0u);
    auto all = g.dump();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].first, "a");
    g.reset();
    EXPECT_EQ(g.value("a"), 0u);
}

TEST(StrUtil, TrimAndSplit)
{
    EXPECT_EQ(trim("  hi \t"), "hi");
    EXPECT_EQ(trim(""), "");
    auto parts = split("a, b ,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
    EXPECT_TRUE(startsWith("hello", "he"));
    EXPECT_TRUE(endsWith("hello", "lo"));
    EXPECT_FALSE(endsWith("lo", "hello"));
}

TEST(Table, PrintsAlignedColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"x", "1"});
    t.row({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, Formatting)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtPercent(0.074, 1), "7.4%");
}

} // namespace
} // namespace ch
