/**
 * @file
 * Fidelity-ladder suite (`ctest -L fidelity`, docs/FIDELITY.md):
 *
 *  - the fast rung's corpus IPC tracks the detailed reference within the
 *    documented accuracy contract (mean |error| <= 10% over the 5x3
 *    corpus, every point within 15%),
 *  - the fast rung honors the rung-independent stall invariant: the six
 *    stall.* counters sum exactly to sim.cycles,
 *  - fast-rung sweeps are deterministic across --jobs values and carry
 *    the core_model schema field,
 *  - the detailed default stays byte-identical: an explicit
 *    --core-model=detailed sweep matches a default sweep exactly and
 *    emits no core_model field, and
 *  - the analytic rung stays a zero-execution predictor: it has no
 *    trace-driven construction (makeCoreModel refuses it) and reports
 *    throughput without any cycle-accounting counters.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "analyze/analytic_model.h"
#include "common/logging.h"
#include "runner/metrics.h"
#include "runner/runner.h"
#include "runner/trace_cache.h"
#include "trace/trace_buffer.h"
#include "uarch/core_model.h"
#include "uarch/stall_account.h"
#include "workloads/workloads.h"

namespace ch {
namespace {

constexpr uint64_t kCap = 200'000;

/** Cap for the corpus-accuracy test: long enough that cold-start ramp
 *  is a small fraction of the run (the documented contract is measured
 *  at full benchmark length; 1M instructions is where the fast rung's
 *  error has settled to its steady-state few percent). */
constexpr uint64_t kCorpusCap = 1'000'000;

/** Captured committed stream, shared across tests via the global cache. */
const TraceBuffer&
corpusTrace(const std::string& name, Isa isa, uint64_t cap = kCorpusCap)
{
    const auto t =
        traceCache().get(name, isa, cap, compiledWorkload(name, isa));
    CH_ASSERT(t, "trace capture failed for ", name);
    return *t;
}

/** Drain @p trace through the rung selected by @p cfg.coreModel. */
SimResult
runRung(const TraceBuffer& trace, Isa isa, const MachineConfig& cfg)
{
    return makeCoreModel(cfg, isa)->replayResult(trace);
}

TEST(FidelityLadder, FastRungTracksDetailedAcrossCorpus)
{
    MachineConfig det = MachineConfig::preset(8);
    MachineConfig fast = det;
    fast.coreModel = CoreModelKind::Fast;

    double errSum = 0;
    int points = 0;
    for (const auto& w : workloads()) {
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            SCOPED_TRACE(w.name + "/" + std::string(isaName(isa)));
            const TraceBuffer& trace = corpusTrace(w.name, isa);
            const SimResult r = runRung(trace, isa, det);
            const SimResult f = runRung(trace, isa, fast);

            EXPECT_EQ(f.insts, r.insts);
            ASSERT_GT(r.ipc(), 0.0);
            const double err =
                std::fabs(f.ipc() - r.ipc()) / r.ipc();
            // No single point may stray far even when the mean is fine.
            EXPECT_LT(err, 0.15);
            errSum += err;
            ++points;
        }
    }
    // The documented contract (docs/FIDELITY.md), also gated in CI by
    // fig_fidelity_ladder --max-relerr 10.
    EXPECT_LE(errSum / points, 0.10);
}

TEST(FidelityLadder, FastRungStallCountersSumToCycles)
{
    MachineConfig cfg = MachineConfig::preset(8);
    cfg.coreModel = CoreModelKind::Fast;
    for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
        SCOPED_TRACE(isaName(isa));
        const TraceBuffer& trace = corpusTrace("coremark", isa);
        const SimResult s = runRung(trace, isa, cfg);

        uint64_t stallSum = 0;
        for (int c = 0; c < kNumStallCats; ++c)
            stallSum += s.stats.value(stallCatCounterName(c));
        EXPECT_EQ(stallSum, s.cycles);
        EXPECT_EQ(s.cycles, s.stats.value("sim.cycles"));
        EXPECT_GT(stallSum, 0u);
    }
}

/** One small sweep on the given rung; returns the metrics JSON. */
std::string
sweepJson(int jobs, CoreModelKind kind)
{
    RunnerOptions opt;
    opt.jobs = jobs;
    opt.coreModel = kind;
    SweepRunner runner(opt);
    for (const auto& w : workloads()) {
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            JobSpec spec;
            spec.id = w.name + "/" + std::string(isaName(isa));
            spec.workload = w.name;
            spec.isa = isa;
            spec.cfg = MachineConfig::preset(8);
            spec.maxInsts = kCap;
            runner.addSim(spec);
        }
    }
    MetricsOptions mopt;
    mopt.bench = "fidelity_test";
    for (const JobResult& r : runner.run())
        EXPECT_TRUE(r.ok) << r.spec.id << ": " << r.error;
    return metricsJsonString(mopt, runner.run());
}

TEST(FidelityLadder, FastSweepIsDeterministicAcrossJobCounts)
{
    const std::string j1 = sweepJson(1, CoreModelKind::Fast);
    const std::string j4 = sweepJson(4, CoreModelKind::Fast);
    EXPECT_EQ(j1, j4);
    // Non-default rungs are distinguishable in the schema.
    EXPECT_NE(j1.find("\"core_model\": \"fast\""), std::string::npos);
}

TEST(FidelityLadder, DetailedDefaultEmitsNoCoreModelFieldAndIsByteStable)
{
    // An explicit --core-model=detailed must be indistinguishable from
    // saying nothing at all: same bytes, no core_model schema field.
    const std::string jDefault = sweepJson(1, CoreModelKind::Detailed);
    const std::string j4 = sweepJson(4, CoreModelKind::Detailed);
    EXPECT_EQ(jDefault, j4);
    EXPECT_EQ(jDefault.find("core_model"), std::string::npos);
}

TEST(FidelityLadder, AnalyticRungPredictsWithoutExecutionCounters)
{
    const MachineConfig cfg = MachineConfig::preset(8);
    for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
        SCOPED_TRACE(isaName(isa));
        const TraceBuffer& trace = corpusTrace("coremark", isa, kCap);
        const SimResult s = analyze::simulateAnalytic(
            compiledWorkload("coremark", isa), cfg, &trace, kCap);

        EXPECT_GT(s.cycles, 0u);
        EXPECT_EQ(s.insts, trace.instCount());
        ASSERT_GT(s.ipc(), 0.0);
        // Zero-execution rung: no cycle accounting, so no stall.*
        // counters may appear.
        for (const auto& [name, value] : s.stats.dump())
            EXPECT_NE(name.rfind("stall.", 0), 0u) << name << "=" << value;
    }
}

TEST(FidelityLadder, AnalyticRungHasNoTraceDrivenConstruction)
{
    MachineConfig cfg = MachineConfig::preset(8);
    cfg.coreModel = CoreModelKind::Analytic;
    EXPECT_THROW(makeCoreModel(cfg, Isa::Clockhands), FatalError);
}

} // namespace
} // namespace ch
