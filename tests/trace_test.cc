#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "emu/emulator.h"
#include "trace/analyzers.h"

namespace ch {
namespace {

/** Run a program for @p isa feeding @p sink. */
RunResult
runWith(Isa isa, const std::string& src, TraceSink* sink,
        uint64_t maxInsts = 10'000'000)
{
    Program p = assemble(isa, src);
    return runProgram(p, maxInsts, sink);
}

// ---------------------------------------------------------------------
// LifetimeAnalyzer
// ---------------------------------------------------------------------

TEST(Lifetime, ShortAndLongLivedRiscv)
{
    // a0 is defined once and used at the very end (long life); a1 is
    // redefined every iteration (short life).
    LifetimeAnalyzer lt(Isa::Riscv);
    runWith(Isa::Riscv, R"(
        li a0, 7            # long-lived
        li a2, 100
        li a1, 0
    loop:
        addi a1, a1, 1
        bne a1, a2, loop
        add a1, a1, a0      # the long-awaited use of a0
        ecall zero, zero, 0
    )", &lt);
    lt.finish();
    const auto& h = lt.overall();
    // ~100 short-lived definitions (lifetime 1..4) plus one long one.
    EXPECT_GE(h.definitions(), 100u);
    // At least one definition lived >= 128 instructions (a0 across the
    // 200-instruction loop).
    EXPECT_GE(h.atLeast(7), 1u);
    // The vast majority lived fewer than 64.
    EXPECT_LT(h.atLeast(6), 5u);
}

TEST(Lifetime, PerHandHistogramsClockhands)
{
    LifetimeAnalyzer lt(Isa::Clockhands);
    runWith(Isa::Clockhands, R"(
        addi v, zero, 50     # loop bound, long-lived in v
        addi t, zero, 0
    loop:
        addi t, t[0], 1
        bne t[0], v[0], loop
        ecall t, zero, 0
    )", &lt);
    lt.finish();
    // v definitions live long; t definitions live short.
    EXPECT_GE(lt.perHand(HandV).atLeast(5), 1u);
    EXPECT_EQ(lt.perHand(HandV).definitions(), 1u);
    EXPECT_GT(lt.perHand(HandT).definitions(), 40u);
    EXPECT_EQ(lt.perHand(HandT).atLeast(5), 0u);
}

TEST(Lifetime, StraightRingTruncation)
{
    // In STRAIGHT, the analyzer tracks ring slots; a value that is
    // overwritten by ring reuse closes at its last use.
    LifetimeAnalyzer lt(Isa::Straight);
    runWith(Isa::Straight, R"(
        addi zero, 5
        addi zero, 6
        add [2], [1]
        ecall [1], 0
    )", &lt);
    lt.finish();
    EXPECT_EQ(lt.totalInsts(), 4u);
    // Three value-producing defs (ecall also writes a slot).
    EXPECT_GE(lt.overall().definitions(), 3u);
}

// ---------------------------------------------------------------------
// MixAnalyzer
// ---------------------------------------------------------------------

TEST(Mix, CategorizesOps)
{
    EXPECT_EQ(mixCategory(Op::ADD), MixCat::Alu);
    EXPECT_EQ(mixCategory(Op::LUI), MixCat::Alu);
    EXPECT_EQ(mixCategory(Op::MUL), MixCat::MulDiv);
    EXPECT_EQ(mixCategory(Op::DIVU), MixCat::MulDiv);
    EXPECT_EQ(mixCategory(Op::FADD_D), MixCat::Flops);
    EXPECT_EQ(mixCategory(Op::FDIV_D), MixCat::Flops);
    EXPECT_EQ(mixCategory(Op::LD), MixCat::Load);
    EXPECT_EQ(mixCategory(Op::FSD), MixCat::Store);
    EXPECT_EQ(mixCategory(Op::BEQ), MixCat::CondBr);
    EXPECT_EQ(mixCategory(Op::J), MixCat::Jump);
    EXPECT_EQ(mixCategory(Op::JAL), MixCat::CallRet);
    EXPECT_EQ(mixCategory(Op::JR), MixCat::CallRet);
    EXPECT_EQ(mixCategory(Op::MV), MixCat::Move);
    EXPECT_EQ(mixCategory(Op::FMV_D), MixCat::Move);
    EXPECT_EQ(mixCategory(Op::NOP), MixCat::Nop);
    EXPECT_EQ(mixCategory(Op::ECALL), MixCat::Others);
}

TEST(Mix, CountsPerCategory)
{
    MixAnalyzer mix;
    runWith(Isa::Riscv, R"(
        li a0, 3
        li a1, 0
    loop:
        addi a1, a1, 1
        nop
        mv a2, a1
        bne a1, a0, loop
        ecall zero, zero, 0
    )", &mix);
    EXPECT_EQ(mix.count(MixCat::Nop), 3u);
    EXPECT_EQ(mix.count(MixCat::Move), 3u);
    EXPECT_EQ(mix.count(MixCat::CondBr), 3u);
    EXPECT_EQ(mix.count(MixCat::Others), 1u);
    EXPECT_EQ(mix.total(), 2u + 3u * 4u + 1u);
}

// ---------------------------------------------------------------------
// HandUsageAnalyzer
// ---------------------------------------------------------------------

TEST(HandUsage, ReadsWritesAndNoDst)
{
    HandUsageAnalyzer hu;
    runWith(Isa::Clockhands, R"(
        addi v, zero, 3      # writes v; reads zero (not counted)
        addi t, zero, 0      # writes t
    loop:
        addi t, t[0], 1      # writes t, reads t
        bne t[0], v[0], loop # no dst, reads t and v
        ecall t, zero, 0     # writes t
    )", &hu);
    EXPECT_EQ(hu.writes(HandV), 1u);
    EXPECT_EQ(hu.writes(HandT), 1u + 3u + 1u);
    EXPECT_EQ(hu.reads(HandV), 3u);        // bne reads v each iteration
    EXPECT_EQ(hu.reads(HandT), 3u + 3u);   // addi + bne each iteration
    EXPECT_EQ(hu.noDst(), 3u);             // the bne instances
    EXPECT_EQ(hu.total(), 2u + 3u * 2u + 1u);
}

// ---------------------------------------------------------------------
// RelayAnalyzer (Fig 3 / Fig 7 methodology)
// ---------------------------------------------------------------------

TEST(Relay, LoopConstantsCountedPerIteration)
{
    // a0 (bound) is defined outside and referenced inside: one relay per
    // closed iteration. a1 changes every iteration: not a constant.
    Program p = assemble(Isa::Riscv, R"(
        li a0, 10
        li a1, 0
    loop:
        addi a1, a1, 1
        bne a1, a0, loop
        ecall zero, zero, 0
    )");
    RelayAnalyzer ra(p);
    runProgram(p, 10'000'000, &ra);
    RelayReport rep = ra.finish();
    // 10 iterations; the loop is only recognized at the first backward
    // branch (which pushes it), so the 8 subsequently closed iterations
    // each reference constant a0 (a conservative lower bound).
    EXPECT_EQ(rep.mvLoopConstant, 8u);
    EXPECT_EQ(rep.crossDepth[1], 8u);
    EXPECT_EQ(rep.crossDepth[2], 0u);
}

TEST(Relay, NestedLoopConstantsCrossDepth)
{
    // The outer bound a0 is referenced in the inner loop: it crosses two
    // loop levels from the inner loop's perspective after re-entry.
    Program p = assemble(Isa::Riscv, R"(
        li a0, 4            # outer bound, also inner bound
        li a1, 0            # i
    outer:
        li a2, 0            # j
    inner:
        addi a2, a2, 1
        bne a2, a0, inner
        addi a1, a1, 1
        bne a1, a0, outer
        ecall zero, zero, 0
    )");
    RelayAnalyzer ra(p);
    runProgram(p, 10'000'000, &ra);
    RelayReport rep = ra.finish();
    EXPECT_GT(rep.mvLoopConstant, 0u);
    // Some references cross one level (outer loop's use of a0) and some
    // cross two (inner loop's use of a0 once the outer loop is active).
    EXPECT_GT(rep.crossDepth[1], 0u);
    EXPECT_GT(rep.crossDepth[2], 0u);
    // Fig 7 behaviour: more hands leave fewer relays; with many hands the
    // count reaches zero; with one hand everything remains.
    const uint64_t h1 = rep.remainingWithHands(1, false);
    const uint64_t h2 = rep.remainingWithHands(2, false);
    const uint64_t h4 = rep.remainingWithHands(4, false);
    EXPECT_EQ(h1, rep.mvLoopConstant);
    EXPECT_LE(h2, h1);
    EXPECT_LE(h4, h2);
    EXPECT_EQ(h4, 0u);
    // Reserving a hand for SP shifts the curve up.
    EXPECT_GE(rep.remainingWithHands(2, true), h2);
}

TEST(Relay, MaxDistanceRelays)
{
    // a0 lives across a 300-instruction stretch; with M=126 that needs
    // floor(~300/126) = 2 relay instructions.
    Program p = assemble(Isa::Riscv, R"(
        li a0, 7
        li a1, 150
        li a2, 0
    loop:
        addi a2, a2, 1
        bne a2, a1, loop
        add a0, a0, a0      # use of a0, ~302 instructions after its def
        ecall zero, zero, 0
    )");
    RelayAnalyzer ra(p);
    runProgram(p, 10'000'000, &ra);
    RelayReport rep = ra.finish();
    // Both a0 (def->use ~303 insts) and the loop bound a1 (~301 insts)
    // exceed 2M = 252 instructions: two relays each.
    EXPECT_EQ(rep.mvMaxDistance, 4u);
}

TEST(Relay, ConvergenceNops)
{
    // The join point after an if/else is entered by fall-through on one
    // path: that path needs a trailing nop in STRAIGHT.
    Program p = assemble(Isa::Riscv, R"(
        li a0, 4
        li a1, 0
        li a2, 0
    loop:
        andi a3, a1, 1
        beq a3, zero, even
        addi a2, a2, 10
        j join
    even:
        addi a2, a2, 1      # falls through into join
    join:
        addi a1, a1, 1
        bne a1, a0, loop
        ecall zero, zero, 0
    )");
    RelayAnalyzer ra(p);
    runProgram(p, 10'000'000, &ra);
    RelayReport rep = ra.finish();
    // 2 of 4 iterations take the even path and fall through into join,
    // plus the single fall-through entry into the loop header (itself a
    // convergence point, being the target of the backward bne).
    EXPECT_EQ(rep.nopConvergence, 3u);
}

TEST(Relay, CallsDoNotBreakLoopTracking)
{
    // A function call inside a loop: callee-defined values must not be
    // miscounted as loop constants, and the loop survives the call.
    Program p = assemble(Isa::Riscv, R"(
        li a0, 5
        li a1, 0
    loop:
        call bump
        bne a1, a0, loop
        ecall zero, zero, 0
    bump:
        addi a1, a1, 1
        ret
    )");
    RelayAnalyzer ra(p);
    runProgram(p, 10'000'000, &ra);
    RelayReport rep = ra.finish();
    // Constant a0 referenced in each of the 3 closed iterations; the
    // callee-defined a1 increments are not counted as constants.
    EXPECT_EQ(rep.mvLoopConstant, 3u);
}

TEST(Relay, IncreaseFractionIsBounded)
{
    Program p = assemble(Isa::Riscv, R"(
        li a0, 100
        li a1, 0
    loop:
        addi a1, a1, 1
        bne a1, a0, loop
        ecall zero, zero, 0
    )");
    RelayAnalyzer ra(p);
    runProgram(p, 10'000'000, &ra);
    RelayReport rep = ra.finish();
    EXPECT_GT(rep.increaseFraction(), 0.0);
    EXPECT_LT(rep.increaseFraction(), 1.0);
    EXPECT_EQ(rep.totalInsts, 2u + 100u * 2u + 1u);
}

} // namespace
} // namespace ch
