/**
 * @file
 * Simulation-farm and persistent-store suite: `ctest -L service`
 * (docs/SERVICE.md). Covers the wire codec's bit-exact round trips, the
 * content-addressed key's label blindness, store result/trace round
 * trips (including the mmap replay path, the keyframe-index round trip,
 * the version-1 format fallback, and loud rejection of a corrupt
 * index), TraceCache LRU eviction with a persistent backing, farm-vs-direct byte-identical metrics (plain
 * and with per-job core-model pins), worker crash containment,
 * bounded-queue backpressure, warm-store reruns that simulate nothing,
 * and the parse-time exit-2 validation of --farm/--store in
 * bench_util.h.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ftw.h>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_util.h"
#include "emu/emulator.h"
#include "runner/metrics.h"
#include "runner/runner.h"
#include "runner/trace_cache.h"
#include "service/codec.h"
#include "service/farm.h"
#include "service/json.h"
#include "service/store.h"
#include "uarch/sim.h"
#include "workloads/workloads.h"

namespace ch {
namespace {

constexpr uint64_t kCap = 20'000;

int
rmCallback(const char* path, const struct stat*, int, struct FTW*)
{
    return ::remove(path);
}

/** Self-cleaning temp directory for stores and sockets. */
struct TempDir {
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/ch-service-test-XXXXXX";
        if (!::mkdtemp(tmpl))
            throw std::runtime_error("mkdtemp failed");
        path = tmpl;
    }

    ~TempDir() { ::nftw(path.c_str(), rmCallback, 16, FTW_DEPTH | FTW_PHYS); }
};

/** FarmServer on a temp Unix socket, served from a second thread. */
class LocalFarm
{
  public:
    explicit LocalFarm(service::FarmOptions opt)
    {
        address_ = opt.socket;
        server_ = std::make_unique<service::FarmServer>(std::move(opt));
        server_->start();
        thread_ = std::thread([this] { server_->serve(); });
    }

    ~LocalFarm()
    {
        server_->requestStop();
        thread_.join();
    }

    const std::string& address() const { return address_; }

  private:
    std::string address_;
    std::unique_ptr<service::FarmServer> server_;
    std::thread thread_;
};

JobSpec
makeSpec(const std::string& wl, Isa isa, int width,
         uint64_t cap = kCap)
{
    JobSpec spec;
    spec.workload = wl;
    spec.isa = isa;
    spec.cfg = MachineConfig::preset(width);
    spec.maxInsts = cap;
    spec.id = wl + "/" + std::string(isaName(isa)) + "/" +
              std::to_string(width) + "f";
    spec.seed = jobSeed(spec);
    return spec;
}

std::vector<JobSpec>
smallGrid()
{
    std::vector<JobSpec> specs;
    for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands})
        for (int width : {4, 8})
            specs.push_back(makeSpec("coremark", isa, width));
    return specs;
}

std::string
sweepJson(const std::vector<JobSpec>& specs, RunnerOptions opt)
{
    SweepRunner runner(std::move(opt));
    for (const JobSpec& spec : specs)
        runner.addSim(spec);
    const auto& results = runner.run();
    MetricsOptions mo;
    mo.bench = "service_test";
    return metricsJsonString(mo, results);
}

// -- codec ------------------------------------------------------------

TEST(ServiceCodec, JobSpecRoundTripsEveryField)
{
    JobSpec spec = makeSpec("mcf", Isa::Clockhands, 6);
    spec.priority = 7;
    spec.coreModel = CoreModelKind::Fast;
    spec.cfg.sampling.intervalInsts = 5000;
    spec.cfg.sampling.sampleInsts = 500;
    spec.cfg.sampling.warmupInsts = 250;
    spec.cfg.sampling.functionalWarming = false;
    spec.cfg.equalHandQuota = true;

    const JobSpec back = service::jobSpecFromJson(
        service::jsonParse(service::jobSpecToJson(spec).dump()));
    EXPECT_EQ(back.id, spec.id);
    EXPECT_EQ(back.workload, spec.workload);
    EXPECT_EQ(back.isa, spec.isa);
    EXPECT_EQ(back.maxInsts, spec.maxInsts);
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_EQ(back.priority, spec.priority);
    ASSERT_TRUE(back.coreModel.has_value());
    EXPECT_EQ(*back.coreModel, CoreModelKind::Fast);
    EXPECT_EQ(back.cfg.fetchWidth, spec.cfg.fetchWidth);
    EXPECT_EQ(back.cfg.robSize, spec.cfg.robSize);
    EXPECT_EQ(back.cfg.equalHandQuota, spec.cfg.equalHandQuota);
    EXPECT_EQ(back.cfg.sampling.intervalInsts, 5000u);
    EXPECT_EQ(back.cfg.sampling.sampleInsts, 500u);
    EXPECT_EQ(back.cfg.sampling.warmupInsts, 250u);
    EXPECT_FALSE(back.cfg.sampling.functionalWarming);
    // The canonical serialization must be a fixed point too.
    EXPECT_EQ(service::jobSpecToJson(back).dump(),
              service::jobSpecToJson(spec).dump());
}

TEST(ServiceCodec, JobMetricsRoundTripsBitExactly)
{
    JobMetrics m;
    m.exited = true;
    m.exitCode = -3;
    m.cycles = ~0ull;            // u64 max survives as a raw token
    m.insts = 123456789012345ull;
    m.counters["stall.rob"] = 17;
    m.counters["commit.total"] = ~0ull - 1;
    m.values["ipc"] = 0.1;       // not exactly representable
    m.values["tiny"] = 5e-324;   // denormal min
    m.values["neg"] = -1234.5678901234567;
    m.hostCounters["trace_cache.hits"] = 3;

    const JobMetrics back = service::jobMetricsFromJson(
        service::jsonParse(service::jobMetricsToJson(m).dump()));
    EXPECT_EQ(back.exited, m.exited);
    EXPECT_EQ(back.exitCode, m.exitCode);
    EXPECT_EQ(back.cycles, m.cycles);
    EXPECT_EQ(back.insts, m.insts);
    EXPECT_EQ(back.counters, m.counters);
    ASSERT_EQ(back.values.size(), m.values.size());
    for (const auto& [key, value] : m.values) {
        ASSERT_TRUE(back.values.count(key)) << key;
        // Bit equality, not approximate: %.17g must round-trip doubles.
        EXPECT_EQ(back.values.at(key), value) << key;
    }
    EXPECT_EQ(back.hostCounters, m.hostCounters);
}

TEST(ServiceCodec, SpecKeyIgnoresLabelsButSeesPhysics)
{
    const JobSpec base = makeSpec("coremark", Isa::Riscv, 8);
    const uint64_t h = service::specHash(base);

    // Pure labels: renaming, reseeding or reprioritizing a grid point
    // cannot change any metric, so it must still hit the store.
    JobSpec relabeled = base;
    relabeled.id = "something/else";
    relabeled.seed = 42;
    relabeled.priority = 9;
    relabeled.cfg.pipeTracePath = "/tmp/ignored.kanata";
    EXPECT_EQ(service::specHash(relabeled), h);

    // Simulation-relevant fields must each change the key.
    JobSpec widened = base;
    widened.cfg = MachineConfig::preset(4);
    EXPECT_NE(service::specHash(widened), h);
    JobSpec shorter = base;
    shorter.maxInsts = kCap / 2;
    EXPECT_NE(service::specHash(shorter), h);
    JobSpec rung = base;
    rung.coreModel = CoreModelKind::Fast;
    EXPECT_NE(service::specHash(rung), h);
}

TEST(ServiceCodec, ProgramHashSeesContent)
{
    const Program& a = compiledWorkload("coremark", Isa::Riscv);
    const Program& b = compiledWorkload("coremark", Isa::Clockhands);
    const Program& c = compiledWorkload("mcf", Isa::Riscv);
    EXPECT_NE(service::programHash(a), service::programHash(b));
    EXPECT_NE(service::programHash(a), service::programHash(c));
    EXPECT_EQ(service::programHash(a), service::programHash(a));
}

// -- persistent store -------------------------------------------------

TEST(PersistentStore, ResultRoundTripAndStructuralMiss)
{
    TempDir dir;
    service::PersistentStore store(dir.path);
    const JobSpec spec = makeSpec("coremark", Isa::Riscv, 8);
    const Program& prog = compiledWorkload("coremark", Isa::Riscv);

    JobMetrics out;
    EXPECT_FALSE(store.load(spec, prog, &out));
    EXPECT_EQ(store.resultMisses(), 1u);

    JobMetrics m;
    m.exited = true;
    m.cycles = 987654321;
    m.insts = kCap;
    m.counters["stall.rob"] = 11;
    m.values["ipc"] = 1.234567890123;
    store.save(spec, prog, m);

    ASSERT_TRUE(store.load(spec, prog, &out));
    EXPECT_EQ(store.resultHits(), 1u);
    EXPECT_EQ(out.cycles, m.cycles);
    EXPECT_EQ(out.counters, m.counters);
    EXPECT_EQ(out.values.at("ipc"), m.values.at("ipc"));

    // A different machine config is a different key: structural miss.
    const JobSpec other = makeSpec("coremark", Isa::Riscv, 4);
    EXPECT_FALSE(store.load(other, prog, &out));
}

TEST(PersistentStore, TraceRoundTripReplaysIdentically)
{
    TempDir dir;
    service::PersistentStore store(dir.path);
    const Program& prog = compiledWorkload("coremark", Isa::Riscv);

    EXPECT_EQ(store.load(prog, kCap), nullptr);

    TraceBuffer captured;
    const RunResult run = runProgram(prog, kCap, &captured);
    captured.setRunOutcome(run.exited, run.exitCode);
    store.save(prog, kCap, captured);

    const std::shared_ptr<const TraceBuffer> loaded =
        store.load(prog, kCap);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->instCount(), captured.instCount());

    // The mmap-backed copy must time exactly like the in-memory one.
    const MachineConfig cfg = MachineConfig::preset(8);
    const SimResult direct = simulateReplay(captured, Isa::Riscv, cfg);
    const SimResult mapped = simulateReplay(*loaded, Isa::Riscv, cfg);
    EXPECT_EQ(mapped.cycles, direct.cycles);
    EXPECT_EQ(mapped.insts, direct.insts);
}

/** Store-side path of the trace file (mirrors tracePath() layout). */
std::string
traceFilePath(const std::string& root, const Program& prog, uint64_t cap)
{
    const std::string bin =
        service::hashHex(service::programHash(prog));
    return root + "/v1/traces/" + bin.substr(0, 2) + "/" + bin + "-" +
           std::to_string(cap) + ".chtrace";
}

/** Collects the replayed stream for slice comparison. */
class CollectSink : public TraceSink
{
  public:
    void onInst(const DynInst& di) override { insts_.push_back(di); }
    const std::vector<DynInst>& insts() const { return insts_; }

  private:
    std::vector<DynInst> insts_;
};

TEST(PersistentStore, TraceRoundTripPreservesKeyframeIndex)
{
    TempDir dir;
    service::PersistentStore store(dir.path);
    const Program& prog = compiledWorkload("coremark", Isa::Riscv);

    TraceBuffer captured;
    captured.setKeyframeInterval(1'000);
    const RunResult run = runProgram(prog, kCap, &captured);
    captured.setRunOutcome(run.exited, run.exitCode);
    ASSERT_FALSE(captured.keyframes().empty());
    store.save(prog, kCap, captured);

    const std::shared_ptr<const TraceBuffer> loaded =
        store.load(prog, kCap);
    ASSERT_NE(loaded, nullptr);
    ASSERT_EQ(loaded->keyframes().size(), captured.keyframes().size());
    for (size_t i = 0; i < captured.keyframes().size(); ++i) {
        const TraceKeyframe& a = captured.keyframes()[i];
        const TraceKeyframe& b = loaded->keyframes()[i];
        EXPECT_EQ(a.instIndex, b.instIndex);
        EXPECT_EQ(a.byteOffset, b.byteOffset);
        EXPECT_EQ(a.predPc, b.predPc);
        EXPECT_EQ(a.lastMemAddr, b.lastMemAddr);
    }

    // A mid-stream slice decoded off the mmap'd index matches the
    // in-memory capture bit for bit.
    CollectSink fromMemory, fromMmap;
    captured.replayRange(fromMemory, 4'321, 2'000);
    loaded->replayRange(fromMmap, 4'321, 2'000);
    ASSERT_EQ(fromMemory.insts().size(), fromMmap.insts().size());
    for (size_t i = 0; i < fromMemory.insts().size(); ++i) {
        const DynInst& a = fromMemory.insts()[i];
        const DynInst& b = fromMmap.insts()[i];
        ASSERT_EQ(a.seq, b.seq) << "record " << i;
        ASSERT_EQ(a.pc, b.pc) << "record " << i;
        ASSERT_EQ(a.op, b.op) << "record " << i;
        ASSERT_EQ(a.memAddr, b.memAddr) << "record " << i;
        ASSERT_EQ(a.nextPc, b.nextPc) << "record " << i;
    }
}

TEST(PersistentStore, OldFormatTraceLoadsWithEmptyKeyframeIndex)
{
    TempDir dir;
    service::PersistentStore store(dir.path);
    const Program& prog = compiledWorkload("coremark", Isa::Straight);

    TraceBuffer captured;
    const RunResult run = runProgram(prog, kCap, &captured);
    captured.setRunOutcome(run.exited, run.exitCode);
    store.save(prog, kCap, captured);  // creates the <hh> subdirectory

    // Overwrite with a hand-built version-1 file: 48-byte header, then
    // the payload, no keyframe index.
    const std::string path = traceFilePath(dir.path, prog, kCap);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out);
        struct {
            char magic[8];
            uint64_t instCount;
            uint64_t firstSeq;
            int64_t exitCode;
            uint64_t encodedBytes;
            uint8_t exited;
            uint8_t pad[7];
        } hdr = {};
        std::memcpy(hdr.magic, "CHTRACE1", 8);
        hdr.instCount = captured.instCount();
        hdr.firstSeq = captured.firstSeq();
        hdr.exitCode = captured.exitCode();
        hdr.encodedBytes = captured.byteSize();
        hdr.exited = captured.exited() ? 1 : 0;
        out.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
        out.write(reinterpret_cast<const char*>(captured.data()),
                  static_cast<std::streamsize>(captured.byteSize()));
    }

    const std::shared_ptr<const TraceBuffer> loaded =
        store.load(prog, kCap);
    ASSERT_NE(loaded, nullptr);
    EXPECT_TRUE(loaded->keyframes().empty());
    EXPECT_EQ(loaded->instCount(), captured.instCount());

    const MachineConfig cfg = MachineConfig::preset(8);
    const SimResult direct = simulateReplay(captured, Isa::Straight, cfg);
    const SimResult mapped = simulateReplay(*loaded, Isa::Straight, cfg);
    EXPECT_EQ(mapped.cycles, direct.cycles);
    EXPECT_EQ(mapped.stats.dump(), direct.stats.dump());
}

TEST(PersistentStore, CorruptKeyframeIndexIsRejectedLoudly)
{
    TempDir dir;
    service::PersistentStore store(dir.path);
    const Program& prog = compiledWorkload("coremark", Isa::Clockhands);

    TraceBuffer captured;
    captured.setKeyframeInterval(1'000);
    const RunResult run = runProgram(prog, kCap, &captured);
    captured.setRunOutcome(run.exited, run.exitCode);
    ASSERT_FALSE(captured.keyframes().empty());
    store.save(prog, kCap, captured);
    const std::string path = traceFilePath(dir.path, prog, kCap);

    // Point the first keyframe's byteOffset past the payload: the index
    // is untrustworthy and the whole file must be treated as a miss.
    {
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        ASSERT_TRUE(f);
        const std::streamoff firstKeyframeByteOffset =
            56 + static_cast<std::streamoff>(captured.byteSize()) + 8;
        f.seekp(firstKeyframeByteOffset);
        const uint64_t bogus = ~0ull;
        f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
    }
    uint64_t missesBefore = store.traceMisses();
    EXPECT_EQ(store.load(prog, kCap), nullptr);
    EXPECT_EQ(store.traceMisses(), missesBefore + 1);

    // A file chopped mid-index no longer adds up either.
    store.save(prog, kCap, captured);
    {
        struct stat st;
        ASSERT_EQ(::stat(path.c_str(), &st), 0);
        ASSERT_EQ(::truncate(path.c_str(), st.st_size - 16), 0);
    }
    missesBefore = store.traceMisses();
    EXPECT_EQ(store.load(prog, kCap), nullptr);
    EXPECT_EQ(store.traceMisses(), missesBefore + 1);

    // An intact re-save recovers: the store never caches the rejection.
    store.save(prog, kCap, captured);
    EXPECT_NE(store.load(prog, kCap), nullptr);
}

TEST(TraceCacheLru, EvictsToStoreAndReloads)
{
    TempDir dir;
    service::PersistentStore store(dir.path);
    const Program& progA = compiledWorkload("coremark", Isa::Riscv);
    const Program& progB = compiledWorkload("mcf", Isa::Riscv);

    // Measure both streams with an unlimited probe cache first.
    TraceCache probe(0);
    const auto trA = probe.get("coremark", Isa::Riscv, kCap, progA);
    ASSERT_NE(trA, nullptr);
    const size_t sizeA = trA->byteSize();
    const auto trB = probe.get("mcf", Isa::Riscv, kCap, progB);
    ASSERT_NE(trB, nullptr);
    const size_t sizeB = trB->byteSize();

    // Budget fits either stream alone but never both.
    TraceCache cache(std::max(sizeA, sizeB) + 16, &store);
    const auto a1 = cache.get("coremark", Isa::Riscv, kCap, progA);
    ASSERT_NE(a1, nullptr);
    EXPECT_EQ(cache.evictionCount(), 0u);

    const auto b1 = cache.get("mcf", Isa::Riscv, kCap, progB);
    ASSERT_NE(b1, nullptr);
    EXPECT_EQ(cache.evictionCount(), 1u);  // A was evicted for B
    EXPECT_EQ(b1->instCount(), trB->instCount());
    // The in-flight handle keeps the evicted stream alive and intact.
    EXPECT_EQ(a1->instCount(), trA->instCount());

    // Re-getting A reloads from disk (no re-emulation) and evicts B.
    const uint64_t capturesBefore = cache.captureCount();
    const auto a2 = cache.get("coremark", Isa::Riscv, kCap, progA);
    ASSERT_NE(a2, nullptr);
    EXPECT_EQ(cache.captureCount(), capturesBefore);
    EXPECT_GE(store.traceHits(), 1u);
    EXPECT_EQ(cache.evictionCount(), 2u);
    EXPECT_EQ(a2->instCount(), trA->instCount());
}

// -- farm -------------------------------------------------------------

TEST(Farm, MatchesDirectRunByteForByte)
{
    TempDir dir;
    service::FarmOptions fo;
    fo.socket = dir.path + "/farm.sock";
    fo.workers = 2;
    LocalFarm farm(fo);

    const std::vector<JobSpec> specs = smallGrid();
    const std::string direct = sweepJson(specs, RunnerOptions{});

    RunnerOptions opt;
    service::attachFarm(opt, farm.address());
    const std::string farmed = sweepJson(specs, opt);

    EXPECT_FALSE(direct.empty());
    EXPECT_EQ(direct, farmed);
}

TEST(Farm, MixedCoreModelPinsMatchDirect)
{
    TempDir dir;
    service::FarmOptions fo;
    fo.socket = dir.path + "/farm.sock";
    fo.workers = 2;
    LocalFarm farm(fo);

    // One grid mixing fidelity rungs per job: detailed, fast, analytic.
    std::vector<JobSpec> specs = smallGrid();
    specs[1].coreModel = CoreModelKind::Fast;
    specs[3].coreModel = CoreModelKind::Analytic;
    specs[4].coreModel = CoreModelKind::Detailed;

    const std::string direct = sweepJson(specs, RunnerOptions{});
    RunnerOptions opt;
    service::attachFarm(opt, farm.address());
    EXPECT_EQ(direct, sweepJson(specs, opt));
}

TEST(Farm, CrashIsContainedToOneJob)
{
    TempDir dir;
    service::FarmOptions fo;
    fo.socket = dir.path + "/farm.sock";
    fo.workers = 1;  // the crashing job and its successors share a worker
    LocalFarm farm(fo);

    std::vector<JobSpec> specs;
    specs.push_back(makeSpec("coremark", Isa::Riscv, 4));
    specs.push_back(makeSpec("coremark", Isa::Riscv, 8));
    specs.push_back(makeSpec("coremark", Isa::Clockhands, 8));
    std::vector<char> fault(specs.size(), 0);
    fault[1] = 1;

    std::vector<JobResult> results(specs.size());
    service::FarmClient client(farm.address());
    client.runJobs(specs, fault, [&](size_t i, JobResult r) {
        results[i] = std::move(r);
    });

    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("worker crashed"),
              std::string::npos)
        << results[1].error;
    // The job after the crash runs on the respawned worker.
    EXPECT_TRUE(results[2].ok) << results[2].error;

    // The daemon itself survived: a fresh clean run still works.
    std::vector<JobResult> rerun(specs.size());
    service::FarmClient again(farm.address());
    again.runJobs(specs, {}, [&](size_t i, JobResult r) {
        rerun[i] = std::move(r);
    });
    for (const JobResult& r : rerun)
        EXPECT_TRUE(r.ok) << r.spec.id << ": " << r.error;
    EXPECT_GT(rerun[1].metrics.cycles, 0u);
}

TEST(Farm, BoundedQueueBackpressureStillCompletes)
{
    TempDir dir;
    service::FarmOptions fo;
    fo.socket = dir.path + "/farm.sock";
    fo.workers = 1;
    fo.queueBound = 1;  // force busy replies on any burst
    LocalFarm farm(fo);

    const std::vector<JobSpec> specs = smallGrid();
    std::vector<JobResult> results(specs.size());
    service::FarmClient client(farm.address());
    client.runJobs(specs, {}, [&](size_t i, JobResult r) {
        results[i] = std::move(r);
    });
    for (const JobResult& r : results)
        EXPECT_TRUE(r.ok) << r.spec.id << ": " << r.error;
}

TEST(Farm, WarmStoreRerunSimulatesNothing)
{
    TempDir dir;
    service::FarmOptions fo;
    fo.socket = dir.path + "/farm.sock";
    fo.workers = 2;
    fo.useStore = true;
    fo.storeDir = dir.path + "/store";
    LocalFarm farm(fo);

    const std::vector<JobSpec> specs = smallGrid();
    const auto runOnce = [&] {
        std::vector<JobResult> results(specs.size());
        service::FarmClient client(farm.address());
        client.runJobs(specs, {}, [&](size_t i, JobResult r) {
            results[i] = std::move(r);
        });
        return results;
    };
    const auto statSimulated = [&] {
        service::FarmClient client(farm.address());
        const service::JsonValue v = service::jsonParse(
            client.request("{\"type\":\"stats\"}"));
        return v.getU64("simulated", ~0ull);
    };

    const std::vector<JobResult> cold = runOnce();
    const uint64_t simulatedCold = statSimulated();
    EXPECT_EQ(simulatedCold, specs.size());

    const std::vector<JobResult> warm = runOnce();
    // Zero new simulations: every warm job was a store hit...
    EXPECT_EQ(statSimulated(), simulatedCold);
    // ...and the simulated metrics are identical to the cold run's.
    // Host-side observations (wall time, RSS, cache counters) are
    // outside the determinism contract, so normalize them away.
    const auto simOnly = [](JobMetrics m) {
        m.wallMs = 0;
        m.peakRssKiB = 0;
        m.hostCounters.clear();
        return service::jobMetricsToJson(m).dump();
    };
    for (size_t i = 0; i < specs.size(); ++i) {
        ASSERT_TRUE(warm[i].ok) << warm[i].error;
        EXPECT_EQ(simOnly(warm[i].metrics), simOnly(cold[i].metrics))
            << specs[i].id;
    }
}

// -- bench_util parse-time validation ---------------------------------

int
benchInitExitCode(std::vector<std::string> args)
{
    std::vector<char*> argv;
    static char name[] = "service_test_bench";
    argv.push_back(name);
    for (std::string& a : args)
        argv.push_back(a.data());
    benchInit(static_cast<int>(argv.size()), argv.data(),
              "service_test_bench");
    return 0;  // unreachable for the cases under test
}

TEST(BenchFlagsDeathTest, UnreachableFarmExitsTwoAtParseTime)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(benchInitExitCode({"--farm", "/nonexistent/farm.sock"}),
                ::testing::ExitedWithCode(2), "--farm");
}

TEST(BenchFlagsDeathTest, EmptyFarmAddressExitsTwo)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(benchInitExitCode({"--farm", ""}),
                ::testing::ExitedWithCode(2),
                "expects a socket address");
}

TEST(BenchFlagsDeathTest, FarmConflictsWithPipeTrace)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    TempDir dir;
    EXPECT_EXIT(benchInitExitCode({"--pipe-trace", dir.path, "--farm",
                                   "/nonexistent/farm.sock"}),
                ::testing::ExitedWithCode(2),
                "cannot be combined with --pipe-trace");
}

TEST(BenchFlagsDeathTest, FarmConflictsWithVerifyStats)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(benchInitExitCode({"--verify-stats", "--farm",
                                   "/nonexistent/farm.sock"}),
                ::testing::ExitedWithCode(2),
                "cannot be combined with --verify-stats");
}

TEST(BenchFlagsDeathTest, UnwritableStoreDirExitsTwo)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        benchInitExitCode({"--store-dir", "/proc/no-such-store"}),
        ::testing::ExitedWithCode(2), "--store");
}

} // namespace
} // namespace ch
