#include <gtest/gtest.h>

#include "backend/backend.h"
#include "energy/energy_model.h"
#include "fpga/resource_model.h"
#include "uarch/sim.h"

namespace ch {
namespace {

// ---------------------------------------------------------------------
// Table 1: checkpoint (recovery information) sizes.
// ---------------------------------------------------------------------

TEST(Checkpoint, Table1Sizes)
{
    EXPECT_EQ(checkpointBits(Isa::Riscv), 63 * 9);       // ~570 bits
    EXPECT_EQ(checkpointBits(Isa::Straight), 9 + 64);    // ~70 bits
    EXPECT_EQ(checkpointBits(Isa::Clockhands), 4 * 9);   // ~36 bits
    // Orders match the paper's Table 1.
    EXPECT_GT(checkpointBits(Isa::Riscv),
              5 * checkpointBits(Isa::Straight));
    EXPECT_GT(checkpointBits(Isa::Straight),
              checkpointBits(Isa::Clockhands));
}

// ---------------------------------------------------------------------
// Energy model structure.
// ---------------------------------------------------------------------

StatGroup
statsFor(Isa isa, int width, const char* src)
{
    Program p = compileMiniC(src, isa);
    SimResult r = simulate(p, MachineConfig::preset(width));
    return std::move(r.stats);
}

const char* kKernel = R"(
    int main() {
        long acc = 0;
        long i;
        for (i = 0; i < 30000; i = i + 1) {
            acc = acc + (i ^ (i >> 3)) * 3;
            if (acc > 1000000) acc = acc - 999999;
        }
        return (int)(acc & 63);
    }
)";

TEST(Energy, RenamerDominatedByRisc)
{
    const MachineConfig cfg = MachineConfig::preset(8);
    EnergyBreakdown risc =
        computeEnergy(cfg, Isa::Riscv, statsFor(Isa::Riscv, 8, kKernel));
    EnergyBreakdown clock = computeEnergy(
        cfg, Isa::Clockhands, statsFor(Isa::Clockhands, 8, kKernel));
    // The renamer is the component the paper attacks: RISC's RMT + DCL +
    // checkpoints must clearly exceed the RP-calculation stage, and the
    // gap must widen with fetch width (the Fig 14 story).
    EXPECT_GT(risc.at(EnergyComp::Renamer),
              2.0 * clock.at(EnergyComp::Renamer));
    EXPECT_GT(risc.total(), 0.0);

    const MachineConfig cfg16 = MachineConfig::preset(16);
    EnergyBreakdown risc16 =
        computeEnergy(cfg16, Isa::Riscv, statsFor(Isa::Riscv, 16, kKernel));
    EnergyBreakdown clock16 = computeEnergy(
        cfg16, Isa::Clockhands, statsFor(Isa::Clockhands, 16, kKernel));
    const double ratio8 =
        risc.at(EnergyComp::Renamer) / clock.at(EnergyComp::Renamer);
    const double ratio16 =
        risc16.at(EnergyComp::Renamer) / clock16.at(EnergyComp::Renamer);
    EXPECT_GT(ratio16, ratio8);
}

TEST(Energy, GrowsSuperlinearlyWithWidth)
{
    // Fig 14: the 16-fetch RISC model burns ~7.8x the energy of the
    // 4-fetch one on the same program.
    EnergyBreakdown e4 = computeEnergy(MachineConfig::preset(4), Isa::Riscv,
                                       statsFor(Isa::Riscv, 4, kKernel));
    EnergyBreakdown e16 = computeEnergy(MachineConfig::preset(16),
                                        Isa::Riscv,
                                        statsFor(Isa::Riscv, 16, kKernel));
    const double ratio = e16.total() / e4.total();
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 20.0);
}

TEST(Energy, ClockhandsSavesAtWideWidths)
{
    // The headline claim: the savings grow with fetch width.
    auto relSaving = [&](int width) {
        EnergyBreakdown r =
            computeEnergy(MachineConfig::preset(width), Isa::Riscv,
                          statsFor(Isa::Riscv, width, kKernel));
        EnergyBreakdown c =
            computeEnergy(MachineConfig::preset(width), Isa::Clockhands,
                          statsFor(Isa::Clockhands, width, kKernel));
        return 1.0 - c.total() / r.total();
    };
    const double s8 = relSaving(8);
    const double s16 = relSaving(16);
    EXPECT_GT(s16, s8);
    EXPECT_GT(s16, 0.05);
}

TEST(Energy, ComponentNamesComplete)
{
    for (int i = 0; i < static_cast<int>(EnergyComp::kCount); ++i) {
        EXPECT_NE(energyCompName(static_cast<EnergyComp>(i)), "?");
    }
}

// ---------------------------------------------------------------------
// FPGA resource model (Table 3).
// ---------------------------------------------------------------------

TEST(Fpga, Table3AnchorsExact)
{
    // At the calibration widths the model reproduces Table 3 exactly.
    FpgaResources r4 = estimateFpga(Isa::Riscv, 4);
    EXPECT_EQ(r4.lutAllocStage, 2310);
    EXPECT_EQ(r4.ffAllocStage, 998);
    EXPECT_EQ(r4.lutTotal, 101483);
    FpgaResources c8 = estimateFpga(Isa::Clockhands, 8);
    EXPECT_EQ(c8.lutAllocStage, 761);
    EXPECT_EQ(c8.ffAllocStage, 1086);
    FpgaResources s16 = estimateFpga(Isa::Straight, 16);
    EXPECT_EQ(s16.lutAllocStage, 1641);
    EXPECT_EQ(s16.ffTotal, 57214);
}

TEST(Fpga, RenameStageScalesQuadraticallyOnlyForRisc)
{
    const auto r4 = estimateFpga(Isa::Riscv, 4);
    const auto r16 = estimateFpga(Isa::Riscv, 16);
    const auto c4 = estimateFpga(Isa::Clockhands, 4);
    const auto c16 = estimateFpga(Isa::Clockhands, 16);
    const double riscGrowth =
        static_cast<double>(r16.lutAllocStage) / r4.lutAllocStage;
    const double clockGrowth =
        static_cast<double>(c16.lutAllocStage) / c4.lutAllocStage;
    EXPECT_GT(riscGrowth, 10.0);   // superlinear
    EXPECT_LT(clockGrowth, 5.0);   // near-linear
}

TEST(Fpga, InterpolationMonotonic)
{
    for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
        long prev = 0;
        for (int w = 2; w <= 24; ++w) {
            const auto r = estimateFpga(isa, w);
            EXPECT_GE(r.lutAllocStage, prev) << "width " << w;
            prev = r.lutAllocStage;
        }
    }
}

TEST(Fpga, ClockhandsAllocStageIsTiny)
{
    // The paper's Table 3 point: Clockhands' allocation stage costs a
    // small fraction of RISC's at every width.
    for (int w : {4, 8, 16}) {
        const auto r = estimateFpga(Isa::Riscv, w);
        const auto c = estimateFpga(Isa::Clockhands, w);
        EXPECT_LT(c.lutAllocStage * 4, r.lutAllocStage) << "width " << w;
    }
}

} // namespace
} // namespace ch
