#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "asm/module_builder.h"
#include "isa/encoding.h"

namespace ch {
namespace {

TEST(ParseRiscReg, AbiAndNumericNames)
{
    EXPECT_EQ(parseRiscReg("zero"), 0);
    EXPECT_EQ(parseRiscReg("ra"), 1);
    EXPECT_EQ(parseRiscReg("sp"), 2);
    EXPECT_EQ(parseRiscReg("a0"), 10);
    EXPECT_EQ(parseRiscReg("t6"), 31);
    EXPECT_EQ(parseRiscReg("x17"), 17);
    EXPECT_EQ(parseRiscReg("f5"), 37);
    EXPECT_EQ(parseRiscReg("f31"), 63);
    EXPECT_EQ(parseRiscReg("x32"), -1);
    EXPECT_EQ(parseRiscReg("bogus"), -1);
}

TEST(Assembler, RiscBasicBlock)
{
    Program p = assemble(Isa::Riscv, R"(
        # iota body
        addi a5, zero, 0
    loop:
        sw a5, 0(a0)
        addiw a5, a5, 1
        addi a0, a0, 4
        bne a1, a5, loop
        ret
    )");
    ASSERT_EQ(p.numInsts(), 6u);
    EXPECT_EQ(p.decoded[0].op, Op::ADDI);
    EXPECT_EQ(p.decoded[0].dst, 15);  // a5
    EXPECT_EQ(p.decoded[1].op, Op::SW);
    EXPECT_EQ(p.decoded[1].src2, 15);  // data a5
    EXPECT_EQ(p.decoded[1].src1, 10);  // base a0
    EXPECT_EQ(p.decoded[4].op, Op::BNE);
    // bne at index 4 targets "loop" at index 1: offset (1-4)*4 = -12.
    EXPECT_EQ(p.decoded[4].imm, -12);
    EXPECT_EQ(p.decoded[5].op, Op::JR);
    EXPECT_EQ(p.decoded[5].src1, kRegRa);
}

TEST(Assembler, ForwardReferences)
{
    Program p = assemble(Isa::Riscv, R"(
        beq a0, a1, out
        addi a0, a0, 1
    out:
        ret
    )");
    EXPECT_EQ(p.decoded[0].imm, 8);
}

TEST(Assembler, ClockhandsFig1Syntax)
{
    Program p = assemble(Isa::Clockhands, R"(
        addi t, zero, 0
    .L3:
        sw t[1], 0(t[0])
        addiw t, t[1], 1
        addi t, t[1], 4
        bne t[1], s[2], .L3
        ret s[0]
    )");
    ASSERT_EQ(p.numInsts(), 6u);
    const Inst& sw = p.decoded[1];
    EXPECT_EQ(sw.op, Op::SW);
    EXPECT_EQ(sw.src2Hand, HandT);
    EXPECT_EQ(sw.src2, 1);
    EXPECT_EQ(sw.src1Hand, HandT);
    EXPECT_EQ(sw.src1, 0);
    const Inst& bne = p.decoded[4];
    EXPECT_EQ(bne.src2Hand, HandS);
    EXPECT_EQ(bne.src2, 2);
    const Inst& ret = p.decoded[5];
    EXPECT_EQ(ret.op, Op::JR);
    EXPECT_EQ(ret.src1Hand, HandS);
    EXPECT_EQ(ret.src1, 0);
    // Text encodes and redecodes identically.
    Program q = p;
    q.redecode();
    for (size_t i = 0; i < p.numInsts(); ++i) {
        EXPECT_EQ(disassemble(p.isa, p.decoded[i]),
                  disassemble(q.isa, q.decoded[i]));
    }
}

TEST(Assembler, StraightFig1Syntax)
{
    Program p = assemble(Isa::Straight, R"(
        spaddi -8
        addi zero, 0
        sd [4], 0(sp)
        mv [6]
        j .L3
    .L3:
        sw [5], 0([3])
        bne [1], [4], .L3
        ld 0(sp)
        spaddi 8
        ret [2]
    )");
    ASSERT_EQ(p.numInsts(), 10u);
    EXPECT_EQ(p.decoded[0].op, Op::SPADDI);
    EXPECT_EQ(p.decoded[0].imm, -8);
    EXPECT_EQ(p.decoded[2].op, Op::SD);
    EXPECT_EQ(p.decoded[2].src1, kStraightSpBase);
    EXPECT_EQ(p.decoded[2].src2, 4);
    EXPECT_EQ(p.decoded[3].op, Op::MV);
    EXPECT_EQ(p.decoded[3].src1, 6);
    EXPECT_EQ(p.decoded[5].op, Op::SW);
    EXPECT_EQ(p.decoded[5].src1, 3);
    EXPECT_EQ(p.decoded[5].src2, 5);
    EXPECT_EQ(p.decoded[9].op, Op::JR);
    EXPECT_EQ(p.decoded[9].src1, 2);
}

TEST(Assembler, DataDirectivesAndSymbols)
{
    Program p = assemble(Isa::Riscv, R"(
        .data
    tbl:
        .word 1, 2, 3
        .align 3
    big:
        .dword 0x123456789abcdef0
    msg:
        .asciz "hi\n"
        .zero 5
        .text
        la a0, tbl
        ret
    )");
    ASSERT_EQ(p.data.size(), 1u);
    EXPECT_EQ(p.symbol("tbl"), layout::kDataBase);
    EXPECT_EQ(p.symbol("big"), layout::kDataBase + 16);
    EXPECT_EQ(p.symbol("msg"), layout::kDataBase + 24);
    const auto& bytes = p.data[0].bytes;
    EXPECT_EQ(bytes[0], 1);
    EXPECT_EQ(bytes[4], 2);
    EXPECT_EQ(bytes[16], 0xf0);
    EXPECT_EQ(bytes[24], 'h');
    EXPECT_EQ(bytes[26], '\n');
    EXPECT_EQ(bytes[27], 0);
    // la expands to lui+addi that reconstruct the symbol address.
    ASSERT_EQ(p.numInsts(), 3u);
    EXPECT_EQ(p.decoded[0].op, Op::LUI);
    EXPECT_EQ(p.decoded[1].op, Op::ADDI);
    const int64_t hi = p.decoded[0].imm << 12;
    const int64_t lo = p.decoded[1].imm;
    EXPECT_EQ(static_cast<uint64_t>(hi + lo), p.symbol("tbl"));
}

TEST(Assembler, LiExpansions)
{
    // Small, 32-bit, and 64-bit constants.
    Program p = assemble(Isa::Riscv, R"(
        li a0, 42
        li a1, 0x12345678
        li a2, -1
        ret
    )");
    EXPECT_EQ(p.decoded[0].op, Op::ADDI);
    EXPECT_EQ(p.decoded[0].imm, 42);
    EXPECT_EQ(p.decoded[1].op, Op::LUI);
}

TEST(Assembler, EntryDirective)
{
    Program p = assemble(Isa::Riscv, R"(
        nop
    main:
        ret
        .entry main
    )");
    EXPECT_EQ(p.entry, p.symbol("main"));
    EXPECT_EQ(p.entry, layout::kTextBase + 4);
}

TEST(Assembler, Errors)
{
    EXPECT_THROW(assemble(Isa::Riscv, "addi a0, bogus, 1"), FatalError);
    EXPECT_THROW(assemble(Isa::Riscv, "frobnicate a0"), FatalError);
    EXPECT_THROW(assemble(Isa::Riscv, "beq a0, a1, nowhere"), FatalError);
    EXPECT_THROW(assemble(Isa::Clockhands, "addi q, zero, 1"), FatalError);
    EXPECT_THROW(assemble(Isa::Clockhands, "addi t, t[16], 1"), FatalError);
    EXPECT_THROW(assemble(Isa::Straight, "addi [0], 1"), FatalError);
    EXPECT_THROW(assemble(Isa::Straight, "addi [127], 1"), FatalError);
    EXPECT_THROW(assemble(Isa::Riscv, "spaddi -8"), FatalError);
    EXPECT_THROW(assemble(Isa::Riscv, "x: nop\nx: nop"), FatalError);
}

TEST(ModuleBuilder, LoadImmMatchesValue)
{
    // Property: for many constants, the emitted sequence is encodable.
    const int64_t cases[] = {
        0, 1, -1, 42, -42, 2047, -2048, 2048, -2049,
        0x7fffffff, -0x80000000ll, 0x123456789ll,
        0x7fffffffffffffffll, static_cast<int64_t>(0x8000000000000000ull),
        static_cast<int64_t>(0xdeadbeefcafebabeull),
    };
    for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
        for (int64_t v : cases) {
            ModuleBuilder b(isa);
            int n = emitLoadImm(b, isa == Isa::Riscv ? 10 : 0, v);
            EXPECT_GE(n, 1);
            EXPECT_NO_THROW(b.finalize());
        }
    }
}

} // namespace
} // namespace ch
