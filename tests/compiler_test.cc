#include <gtest/gtest.h>

#include "backend/backend.h"
#include "emu/emulator.h"
#include "frontc/codegen.h"
#include "frontc/parser.h"
#include "ir/analysis.h"

namespace ch {
namespace {

/** Compile for @p isa, run, and return the result. */
RunResult
runOn(Isa isa, const std::string& src, uint64_t maxInsts = 50'000'000)
{
    Program p = compileMiniC(src, isa);
    RunResult r = runProgram(p, maxInsts);
    EXPECT_TRUE(r.exited) << "program did not exit on " << isaName(isa);
    return r;
}

/**
 * The core differential harness: all three ISAs must compute the same
 * exit code and byte output. Returns the common exit code.
 */
int64_t
runAll(const std::string& src, const std::string& expectOutput = "")
{
    RunResult riscv = runOn(Isa::Riscv, src);
    RunResult straight = runOn(Isa::Straight, src);
    RunResult clock = runOn(Isa::Clockhands, src);
    EXPECT_EQ(riscv.exitCode, straight.exitCode) << "STRAIGHT diverged";
    EXPECT_EQ(riscv.exitCode, clock.exitCode) << "Clockhands diverged";
    EXPECT_EQ(riscv.output, straight.output);
    EXPECT_EQ(riscv.output, clock.output);
    if (!expectOutput.empty())
        EXPECT_EQ(riscv.output, expectOutput);
    return riscv.exitCode;
}

TEST(Compiler, MainReturnValue)
{
    EXPECT_EQ(runAll("int main() { return 42; }"), 42);
}

TEST(Compiler, Arithmetic)
{
    EXPECT_EQ(runAll(R"(
        int main() {
            long a = 1000000007;
            long b = 998244353;
            long c = (a * 3 - b) % 1000 + (a / b) + (a & 255) - (b | 1) % 7;
            return (int)(c % 100);
        }
    )"), runAll(R"(int main(){ return (int)(((1000000007*3-998244353)%1000
        + 1000000007/998244353 + (1000000007&255) - (998244353|1)%7)%100); })"));
}

TEST(Compiler, IntWrapsAt32Bits)
{
    EXPECT_EQ(runAll(R"(
        int main() {
            int x = 2147483647;
            x = x + 1;               // INT_MIN
            return x == -2147483648 ? 1 : 0;
        }
    )"), 1);
}

TEST(Compiler, WhileLoopSum)
{
    EXPECT_EQ(runAll(R"(
        int main() {
            long sum = 0;
            long i = 1;
            while (i <= 100) { sum = sum + i; i = i + 1; }
            return (int)(sum % 251);   // 5050 % 251 = 30
        }
    )"), 5050 % 251);
}

TEST(Compiler, ForLoopNested)
{
    EXPECT_EQ(runAll(R"(
        int main() {
            long acc = 0;
            for (long i = 0; i < 20; ++i)
                for (long j = 0; j < 20; ++j)
                    if ((i + j) % 3 == 0)
                        acc += i * j;
            return (int)(acc % 199);
        }
    )"), [] {
        long acc = 0;
        for (long i = 0; i < 20; ++i)
            for (long j = 0; j < 20; ++j)
                if ((i + j) % 3 == 0)
                    acc += i * j;
        return static_cast<int>(acc % 199);
    }());
}

TEST(Compiler, DoWhileBreakContinue)
{
    EXPECT_EQ(runAll(R"(
        int main() {
            long n = 0, i = 0;
            do {
                i = i + 1;
                if (i % 2 == 0) continue;
                if (i > 15) break;
                n = n + i;
            } while (i < 100);
            return (int)n;   // 1+3+5+7+9+11+13+15 = 64
        }
    )"), 64);
}

TEST(Compiler, FunctionsAndRecursion)
{
    EXPECT_EQ(runAll(R"(
        long fib(long n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return (int)fib(15); }
    )"), 610);
}

TEST(Compiler, ManyArguments)
{
    EXPECT_EQ(runAll(R"(
        long f(long a, long b, long c, long d, long e, long g) {
            return a + 2*b + 3*c + 4*d + 5*e + 6*g;
        }
        int main() { return (int)f(1, 2, 3, 4, 5, 6); }
    )"), 1 + 4 + 9 + 16 + 25 + 36);
}

TEST(Compiler, GlobalsAndArrays)
{
    EXPECT_EQ(runAll(R"(
        long table[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        long acc;
        int main() {
            acc = 0;
            for (long i = 0; i < 8; ++i)
                acc += table[i] * table[7 - i];
            return (int)acc;
        }
    )"), 1*8 + 2*7 + 3*6 + 4*5 + 5*4 + 6*3 + 7*2 + 8*1);
}

TEST(Compiler, LocalArraysAndPointers)
{
    EXPECT_EQ(runAll(R"(
        int main() {
            long buf[16];
            long* p = buf;
            for (long i = 0; i < 16; ++i) *p++ = i * i;
            long sum = 0;
            for (long* q = buf; q < buf + 16; ++q) sum += *q;
            return (int)(sum % 251);   // 1240 % 251
        }
    )"), 1240 % 251);
}

TEST(Compiler, PointerArithmeticAndAddressOf)
{
    EXPECT_EQ(runAll(R"(
        void bump(long* x) { *x = *x + 7; }
        int main() {
            long v = 10;
            bump(&v);
            bump(&v);
            return (int)v;
        }
    )"), 24);
}

TEST(Compiler, CharArraysAndStrings)
{
    runAll(R"(
        char msg[] = "Hi there";
        int main() {
            for (long i = 0; msg[i]; ++i) putchar(msg[i]);
            putchar(10);
            return 0;
        }
    )", "Hi there\n");
}

TEST(Compiler, Structs)
{
    EXPECT_EQ(runAll(R"(
        struct Point { long x; long y; };
        struct Seg { struct Point a; struct Point b; long tag; };
        struct Seg segs[4];
        long manhattan(struct Seg* s) {
            long dx = s->b.x - s->a.x;
            long dy = s->b.y - s->a.y;
            if (dx < 0) dx = -dx;
            if (dy < 0) dy = -dy;
            return dx + dy;
        }
        int main() {
            for (long i = 0; i < 4; ++i) {
                segs[i].a.x = i;
                segs[i].a.y = 2 * i;
                segs[i].b.x = 10 - i;
                segs[i].b.y = i * i;
                segs[i].tag = i;
            }
            long total = 0;
            for (long i = 0; i < 4; ++i) total += manhattan(&segs[i]);
            return (int)total;
        }
    )"), [] {
        long total = 0;
        for (long i = 0; i < 4; ++i) {
            long dx = (10 - i) - i;
            long dy = i * i - 2 * i;
            if (dx < 0) dx = -dx;
            if (dy < 0) dy = -dy;
            total += dx + dy;
        }
        return static_cast<int>(total);
    }());
}

TEST(Compiler, Doubles)
{
    EXPECT_EQ(runAll(R"(
        double poly(double x) { return 3.0 * x * x - 2.0 * x + 0.5; }
        int main() {
            double acc = 0.0;
            for (long i = 0; i < 10; ++i)
                acc = acc + poly((double)i * 0.5);
            return (int)acc;
        }
    )"), [] {
        double acc = 0.0;
        for (long i = 0; i < 10; ++i) {
            double x = static_cast<double>(i) * 0.5;
            acc += 3.0 * x * x - 2.0 * x + 0.5;
        }
        return static_cast<int>(acc);
    }());
}

TEST(Compiler, DoubleComparisonsAndDivision)
{
    EXPECT_EQ(runAll(R"(
        int main() {
            double a = 1.0 / 3.0;
            double b = 2.0 / 6.0;
            long eq = a == b;
            long lt = a < 0.34;
            long ge = (a * 3.0) >= 0.9999;
            return (int)(eq * 100 + lt * 10 + ge);
        }
    )"), 111);
}

TEST(Compiler, TernaryAndLogical)
{
    EXPECT_EQ(runAll(R"(
        int main() {
            long a = 5, b = 0, c = -3;
            long r = 0;
            if (a > 0 && c < 0) r += 1;
            if (b || c) r += 10;
            if (!(a && b)) r += 100;
            r += a > b ? 1000 : 2000;
            return (int)r;
        }
    )"), 1111);
}

TEST(Compiler, ShiftsAndBitOps)
{
    EXPECT_EQ(runAll(R"(
        int main() {
            long x = 0x1234;
            long r = ((x << 3) ^ (x >> 2)) & 0xffff;
            r |= (~x) & 0xff;
            return (int)(r % 251);
        }
    )"), [] {
        long x = 0x1234;
        long r = ((x << 3) ^ (x >> 2)) & 0xffff;
        r |= (~x) & 0xff;
        return static_cast<int>(r % 251);
    }());
}

TEST(Compiler, CharTypeNarrowing)
{
    EXPECT_EQ(runAll(R"(
        int main() {
            char c = 200;            // wraps to -56
            int widened = c;
            return widened == -56 ? 7 : 0;
        }
    )"), 7);
}

TEST(Compiler, CompoundAssignAndIncDec)
{
    const auto got = runAll(R"(
        int main() {
            long x = 10;
            x += 5; x -= 2; x *= 3; x /= 2; x %= 11;
            long arr[3];
            arr[0] = 0; arr[1] = 0; arr[2] = 0;
            long i = 0;
            arr[i++] = 1;
            arr[i++] = 2;
            arr[--i] += 10;
            return (int)(x * 100 + arr[0] + arr[1] + arr[2]);
        }
    )");
    long x = 10;
    x += 5; x -= 2; x *= 3; x /= 2; x %= 11;
    long arr[3] = {0, 0, 0};
    long i = 0;
    arr[i++] = 1;
    arr[i++] = 2;
    arr[--i] += 10;
    const auto expected =
        static_cast<int>(x * 100 + arr[0] + arr[1] + arr[2]);
    EXPECT_EQ(got, expected);
}

TEST(Compiler, SizeofAndCasts)
{
    EXPECT_EQ(runAll(R"(
        struct S { long a; char b; long c; };
        int main() {
            long r = sizeof(long) + sizeof(char) * 10 + sizeof(struct S);
            double d = 3.9;
            r += (long)d;           // truncates to 3
            r += (long)(char)300;   // 300 wraps to 44
            return (int)r;
        }
    )"), 8 + 10 + 24 + 3 + 44);
}

TEST(Compiler, DeepLoopNestExercisesVHand)
{
    // Four nested loops with constants at each level: the Clockhands
    // hand-assignment stress case from Fig. 7's methodology.
    EXPECT_EQ(runAll(R"(
        int main() {
            long n1 = 3, n2 = 4, n3 = 3, n4 = 2;
            long acc = 0;
            for (long a = 0; a < n1; ++a)
                for (long b = 0; b < n2; ++b)
                    for (long c = 0; c < n3; ++c)
                        for (long d = 0; d < n4; ++d)
                            acc += a + 2*b + 3*c + 4*d + n1 + n2 + n3 + n4;
            return (int)(acc % 251);
        }
    )"), [] {
        long acc = 0;
        for (long a = 0; a < 3; ++a)
            for (long b = 0; b < 4; ++b)
                for (long c = 0; c < 3; ++c)
                    for (long d = 0; d < 2; ++d)
                        acc += a + 2*b + 3*c + 4*d + 3 + 4 + 3 + 2;
        return static_cast<int>(acc % 251);
    }());
}

TEST(Compiler, HighRegisterPressure)
{
    // Many simultaneously-live values force spills in every backend.
    const auto got = runAll(R"(
        int main() {
            long a0=1,a1=2,a2=3,a3=4,a4=5,a5=6,a6=7,a7=8,a8=9,a9=10;
            long b0=11,b1=12,b2=13,b3=14,b4=15,b5=16,b6=17,b7=18,b8=19,b9=20;
            long c0=21,c1=22,c2=23,c3=24,c4=25,c5=26,c6=27,c7=28,c8=29,c9=30;
            long s = 0;
            for (long i = 0; i < 10; ++i) {
                s += a0+a1+a2+a3+a4+a5+a6+a7+a8+a9;
                s += b0+b1+b2+b3+b4+b5+b6+b7+b8+b9;
                s += c0+c1+c2+c3+c4+c5+c6+c7+c8+c9;
                a0 += b0; b1 += c1; c2 += a2; a3 += c3; b4 += a4;
            }
            return (int)(s % 251);
        }
    )");
    long a[10] = {1,2,3,4,5,6,7,8,9,10};
    long b[10] = {11,12,13,14,15,16,17,18,19,20};
    long c[10] = {21,22,23,24,25,26,27,28,29,30};
    long s = 0;
    for (long i = 0; i < 10; ++i) {
        for (int k = 0; k < 10; ++k) s += a[k] + b[k] + c[k];
        a[0] += b[0]; b[1] += c[1]; c[2] += a[2]; a[3] += c[3];
        b[4] += a[4];
    }
    EXPECT_EQ(got, static_cast<int>(s % 251));
}

TEST(Compiler, CallsInsideLoops)
{
    // Values live across calls in a loop: v-hand preservation (CH) and
    // ring spilling (STRAIGHT).
    EXPECT_EQ(runAll(R"(
        long twist(long x) { return x * 3 + 1; }
        int main() {
            long acc = 0;
            long scale = 7;
            for (long i = 0; i < 50; ++i) {
                acc += twist(i) % scale;
                acc += twist(acc % 13);
            }
            return (int)(acc % 251);
        }
    )"), [] {
        auto twist = [](long x) { return x * 3 + 1; };
        long acc = 0;
        for (long i = 0; i < 50; ++i) {
            acc += twist(i) % 7;
            acc += twist(acc % 13);
        }
        return static_cast<int>(acc % 251);
    }());
}

TEST(Compiler, MutualRecursion)
{
    EXPECT_EQ(runAll(R"(
        long isOdd(long n);
        long isEven(long n) { if (n == 0) return 1; return isOdd(n - 1); }
        long isOdd(long n) { if (n == 0) return 0; return isEven(n - 1); }
        int main() { return (int)(isEven(10) * 10 + isOdd(7)); }
    )"), 11);
}

TEST(Compiler, LongLivedValueAcrossManyInstructions)
{
    // A value defined once and used after >126 dynamic instructions:
    // STRAIGHT needs max-distance relays (Fig. 2(b)).
    EXPECT_EQ(runAll(R"(
        int main() {
            long magic = 12345;
            long noise = 0;
            for (long i = 0; i < 200; ++i) noise += i ^ (i << 1);
            return (int)((magic + noise) % 251);
        }
    )"), [] {
        long noise = 0;
        for (long i = 0; i < 200; ++i) noise += i ^ (i << 1);
        return static_cast<int>((12345 + noise) % 251);
    }());
}

// ---------------------------------------------------------------------
// Hand-assignment pass unit checks (Section 6.2 / Algorithm 1).
// ---------------------------------------------------------------------

TEST(HandAssign, LoopConstantsGoToV)
{
    VModule mod = compileToVCode(R"(
        int main() {
            long bound = 1000;
            long sum = 0;
            for (long i = 0; i < bound; ++i) sum += i;
            return (int)(sum % 7);
        }
    )");
    const VFunc* f = mod.findFunc("main");
    ASSERT_NE(f, nullptr);
    HandPlan plan = assignHands(*f);
    int loopConsts = 0;
    for (int v = 0; v < f->numVRegs; ++v) {
        if (plan.isLoopConstant[v]) {
            ++loopConsts;
            EXPECT_EQ(plan.handOf[v], HandV);
        }
    }
    EXPECT_GE(loopConsts, 1);
}

TEST(HandAssign, ShortLivedGoToT)
{
    VModule mod = compileToVCode(R"(
        int main() {
            long x = 3;
            long y = x + 1;
            return (int)(y * 2);
        }
    )");
    const VFunc* f = mod.findFunc("main");
    ASSERT_NE(f, nullptr);
    HandPlan plan = assignHands(*f);
    int tCount = 0;
    for (int v = 0; v < f->numVRegs; ++v) {
        if (plan.handOf[v] == HandT)
            ++tCount;
    }
    EXPECT_GE(tCount, 2);
}

TEST(HandAssign, CallCrossersGoToV)
{
    VModule mod = compileToVCode(R"(
        long id(long x) { return x; }
        int main() {
            long keep = 5;
            long r = id(3);
            return (int)(keep + r);
        }
    )");
    const VFunc* f = mod.findFunc("main");
    ASSERT_NE(f, nullptr);
    HandPlan plan = assignHands(*f);
    // "keep" must live across the call: some vreg is v-assigned or
    // memory-demoted.
    bool found = false;
    for (int v = 0; v < f->numVRegs; ++v) {
        if (plan.handOf[v] == HandV || plan.inMemory[v])
            found = true;
    }
    EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------
// CFG analysis checks.
// ---------------------------------------------------------------------

TEST(Analysis, LoopNestDepths)
{
    VModule mod = compileToVCode(R"(
        int main() {
            long acc = 0;
            for (long i = 0; i < 3; ++i)
                for (long j = 0; j < 3; ++j)
                    acc += i * j;
            return (int)acc;
        }
    )");
    const VFunc* f = mod.findFunc("main");
    CfgInfo cfg = buildCfg(*f);
    DomTree dom = buildDomTree(*f, cfg);
    LoopInfo loops = findLoops(*f, cfg, dom);
    ASSERT_EQ(loops.loops.size(), 2u);
    int maxDepth = 0;
    for (const auto& l : loops.loops)
        maxDepth = std::max(maxDepth, l.depth);
    EXPECT_EQ(maxDepth, 2);
}

TEST(Analysis, LivenessAcrossBlocks)
{
    VModule mod = compileToVCode(R"(
        int main() {
            long a = 5;
            long b = 0;
            if (a > 2) b = a * 2; else b = a * 3;
            return (int)(a + b);
        }
    )");
    const VFunc* f = mod.findFunc("main");
    LiveSets live(*f);
    // Some block must have a live-in (the join reading a and b).
    bool anyLiveIn = false;
    for (const auto& blk : f->blocks) {
        if (!live.liveInRegs(blk.id).empty())
            anyLiveIn = true;
    }
    EXPECT_TRUE(anyLiveIn);
}

} // namespace
} // namespace ch
