/**
 * @file
 * Observability-layer suite (`ctest -L pipetrace`): the Kanata trace
 * writer and PipeTracer output are well-formed and cycle-monotonic, the
 * stall accountant's six categories sum exactly to sim.cycles on every
 * (workload x ISA) pair, and tracing is invisible to the deterministic
 * metrics (byte-identical JSON with tracing on and off).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runner/metrics.h"
#include "runner/runner.h"
#include "trace/kanata.h"
#include "uarch/sim.h"
#include "uarch/stall_account.h"
#include "workloads/workloads.h"

namespace ch {
namespace {

/** Keep per-test sim time reasonable on one core. */
constexpr uint64_t kCap = 200'000;

const Isa kIsas[] = {Isa::Riscv, Isa::Straight, Isa::Clockhands};

// ---------------------------------------------------------------------
// KanataWriter: ordering, buffering, format.
// ---------------------------------------------------------------------

std::vector<std::string>
lines(const std::string& text)
{
    std::vector<std::string> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        out.push_back(line);
    return out;
}

TEST(KanataWriter, HeaderAndCycleBookkeeping)
{
    std::ostringstream os;
    KanataWriter w(os);
    w.insn(0, 0, 0, /*cycle=*/5);
    w.stageStart(0, 0, "F", 5);
    w.retire(0, 0, false, 9);
    w.finish();

    const auto ls = lines(os.str());
    ASSERT_GE(ls.size(), 5u);
    EXPECT_EQ(ls[0], "Kanata\t0004");
    EXPECT_EQ(ls[1], "C=\t5");
    EXPECT_EQ(ls[2], "I\t0\t0\t0");
    EXPECT_EQ(ls[3], "S\t0\t0\tF");
    EXPECT_EQ(ls[4], "C\t4");
    EXPECT_EQ(ls[5], "R\t0\t0\t0");
}

TEST(KanataWriter, ReordersOutOfOrderEvents)
{
    // The timing model records instruction N's commit before N+1's
    // fetch; the writer must serialize by cycle regardless.
    std::ostringstream os;
    KanataWriter w(os);
    w.insn(0, 0, 0, 1);
    w.retire(0, 0, false, 10);
    w.insn(1, 1, 0, 2);
    w.retire(1, 1, false, 8);
    w.finish();

    const auto ls = lines(os.str());
    std::vector<std::string> events;
    for (const auto& l : ls) {
        if (l[0] == 'I' || l[0] == 'R')
            events.push_back(l);
    }
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0][0], 'I');  // id 0 at cycle 1
    EXPECT_EQ(events[1][0], 'I');  // id 1 at cycle 2
    EXPECT_EQ(events[2], "R\t1\t1\t0");  // cycle 8 before cycle 10
    EXPECT_EQ(events[3], "R\t0\t0\t0");
}

TEST(KanataWriter, FlushBeforeBoundsTheBuffer)
{
    std::ostringstream os;
    KanataWriter w(os);
    w.insn(0, 0, 0, 1);
    w.retire(0, 0, false, 100);
    EXPECT_EQ(w.pendingEvents(), 2u);
    w.flushBefore(50);
    EXPECT_EQ(w.pendingEvents(), 1u);  // only the retire remains
    EXPECT_EQ(w.writtenEvents(), 1u);
    w.finish();
    EXPECT_EQ(w.pendingEvents(), 0u);
    EXPECT_EQ(w.writtenEvents(), 2u);
}

TEST(KanataWriter, LabelsAreSanitized)
{
    std::ostringstream os;
    KanataWriter w(os);
    w.insn(0, 0, 0, 1);
    w.label(0, 0, "add\tx1,\nx2", 1);
    w.finish();
    for (const auto& l : lines(os.str())) {
        if (l[0] != 'L')
            continue;
        // Exactly the three command tabs; none from the label text.
        EXPECT_EQ(std::count(l.begin(), l.end(), '\t'), 3);
    }
}

// ---------------------------------------------------------------------
// Kanata trace parser (the checks Konata relies on).
// ---------------------------------------------------------------------

struct TraceCheck {
    uint64_t insns = 0;
    uint64_t retires = 0;
    uint64_t flushes = 0;
    uint64_t stageStarts = 0;
};

/** Parse @p path into @p tc, failing the test on any malformed line. */
void
parseKanataInto(const std::string& path, TraceCheck& tc)
{
    std::ifstream is(path);
    ASSERT_TRUE(is.is_open()) << path;

    std::string line;
    ASSERT_TRUE(static_cast<bool>(std::getline(is, line)));
    EXPECT_EQ(line, "Kanata\t0004");

    bool cycleSet = false;
    std::set<uint64_t> live;     ///< declared and not yet retired
    std::set<uint64_t> retired;
    size_t lineNo = 1;
    while (std::getline(is, line)) {
        ++lineNo;
        SCOPED_TRACE(path + ":" + std::to_string(lineNo) + ": " + line);
        std::vector<std::string> f;
        size_t pos = 0;
        while (true) {
            const size_t tab = line.find('\t', pos);
            f.push_back(line.substr(pos, tab - pos));
            if (tab == std::string::npos)
                break;
            pos = tab + 1;
        }
        ASSERT_FALSE(f.empty());
        const std::string& cmd = f[0];
        auto num = [&](size_t i) {
            return static_cast<uint64_t>(std::stoull(f.at(i)));
        };
        if (cmd == "C=") {
            ASSERT_EQ(f.size(), 2u);
            EXPECT_FALSE(cycleSet) << "C= must appear once, first";
            cycleSet = true;
        } else if (cmd == "C") {
            ASSERT_EQ(f.size(), 2u);
            EXPECT_TRUE(cycleSet);
            EXPECT_GE(num(1), 1u) << "cycle must advance monotonically";
        } else if (cmd == "I") {
            ASSERT_EQ(f.size(), 4u);
            EXPECT_TRUE(live.insert(num(1)).second)
                << "duplicate instruction id";
            ++tc.insns;
        } else if (cmd == "L") {
            ASSERT_GE(f.size(), 4u);
            EXPECT_TRUE(live.count(num(1)));
        } else if (cmd == "S" || cmd == "E") {
            ASSERT_EQ(f.size(), 4u);
            EXPECT_TRUE(live.count(num(1)))
                << "stage event for undeclared/retired id";
            if (cmd == "S")
                ++tc.stageStarts;
        } else if (cmd == "R") {
            ASSERT_EQ(f.size(), 4u);
            EXPECT_TRUE(live.erase(num(1)))
                << "retire of undeclared/retired id";
            EXPECT_TRUE(retired.insert(num(1)).second);
            if (num(3) == 0)
                ++tc.retires;
            else
                ++tc.flushes;
        } else if (cmd == "W") {
            ASSERT_EQ(f.size(), 4u);
            EXPECT_TRUE(live.count(num(1)));
            // The producer may already be retired; only the consumer
            // must be in flight.
        } else {
            ADD_FAILURE() << "unknown Kanata command: " << cmd;
        }
    }
    EXPECT_TRUE(live.empty()) << live.size() << " ids never retired";
}

TraceCheck
parseKanata(const std::string& path)
{
    TraceCheck tc;
    parseKanataInto(path, tc);
    return tc;
}

MachineConfig
tracedCfg(const std::string& path)
{
    MachineConfig cfg = MachineConfig::preset(8);
    cfg.pipeTracePath = path;
    return cfg;
}

TEST(PipeTrace, CoremarkClockhandsTraceIsWellFormed)
{
    const std::string path =
        testing::TempDir() + "pipetrace_coremark_C.kanata";
    const Program& prog = compiledWorkload("coremark", Isa::Clockhands);
    SimResult r = simulate(prog, tracedCfg(path), kCap);

    const TraceCheck tc = parseKanata(path);
    EXPECT_EQ(tc.insns, r.insts);
    EXPECT_EQ(tc.retires, r.insts);
    EXPECT_EQ(tc.flushes, 0u) << "committed-path model never flushes";
    // Every instruction opens at least F, Ds, Is, Ex, Wb, Cm.
    EXPECT_GE(tc.stageStarts, r.insts * 6);
    std::remove(path.c_str());
}

TEST(PipeTrace, AllIsasProduceParseableTraces)
{
    for (Isa isa : kIsas) {
        const std::string path = testing::TempDir() + "pipetrace_" +
                                 std::to_string(static_cast<int>(isa)) +
                                 ".kanata";
        const Program& prog = compiledWorkload("coremark", isa);
        SimResult r = simulate(prog, tracedCfg(path), 20'000);
        const TraceCheck tc = parseKanata(path);
        EXPECT_EQ(tc.insns, r.insts);
        EXPECT_EQ(tc.retires, r.insts);
        std::remove(path.c_str());
    }
}

TEST(PipeTrace, EnvVarEnablesTracing)
{
    const std::string path = testing::TempDir() + "pipetrace_env.kanata";
    ::setenv("CH_PIPE_TRACE", path.c_str(), 1);
    const Program& prog = compiledWorkload("coremark", Isa::Clockhands);
    SimResult traced = simulate(prog, MachineConfig::preset(8), 20'000);
    ::unsetenv("CH_PIPE_TRACE");
    SimResult plain = simulate(prog, MachineConfig::preset(8), 20'000);

    const TraceCheck tc = parseKanata(path);
    EXPECT_EQ(tc.insns, traced.insts);
    EXPECT_EQ(traced.cycles, plain.cycles);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Stall accounting: the sum-to-total invariant, everywhere.
// ---------------------------------------------------------------------

TEST(StallAccounting, CategoriesSumToCyclesOnAllWorkloadsAndIsas)
{
    for (const auto& w : workloads()) {
        for (Isa isa : kIsas) {
            SimResult r = simulate(compiledWorkload(w.name, isa),
                                   MachineConfig::preset(8), kCap);
            uint64_t sum = 0;
            for (int cat = 0; cat < kNumStallCats; ++cat)
                sum += r.stats.value(stallCatCounterName(cat));
            EXPECT_EQ(sum, r.cycles)
                << w.name << " isa=" << static_cast<int>(isa);
            EXPECT_GT(r.stats.value("stall.retiring"), 0u);
        }
    }
}

TEST(StallAccounting, ClockhandsCountersArePopulated)
{
    SimResult r = simulate(compiledWorkload("coremark", Isa::Clockhands),
                           MachineConfig::preset(8), kCap);
    uint64_t writes = 0, reads = 0;
    for (char h : {'t', 'u', 'v', 's'}) {
        writes += r.stats.value(std::string("hand.") + h + ".writes");
        reads += r.stats.value(std::string("hand.") + h + ".reads");
    }
    EXPECT_EQ(writes, r.stats.value("rename.dstWrites"));
    EXPECT_GT(reads, 0u);
    // Junk-slot reads exist but are the exception, not the rule.
    EXPECT_LT(r.stats.value("read.junkSlots"), reads / 2);
}

// ---------------------------------------------------------------------
// Tracing must be invisible to the deterministic metrics.
// ---------------------------------------------------------------------

std::string
sweepJson(const std::string& traceDir)
{
    RunnerOptions opt;
    opt.jobs = 1;
    opt.pipeTraceDir = traceDir;
    SweepRunner runner(opt);
    for (Isa isa : kIsas) {
        JobSpec spec;
        spec.id = std::string("coremark/") + shortIsa(isa) + "/8f";
        spec.workload = "coremark";
        spec.isa = isa;
        spec.cfg = MachineConfig::preset(8);
        spec.maxInsts = 20'000;
        runner.addSim(spec);
    }
    MetricsOptions mo;
    mo.bench = "pipetrace_test";
    return metricsJsonString(mo, runner.run());
}

TEST(PipeTrace, TracingOnAndOffProduceByteIdenticalMetrics)
{
    const std::string dir = testing::TempDir() + "pipetrace_sweep";
    ASSERT_EQ(::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST, true);
    const std::string off = sweepJson("");
    const std::string on = sweepJson(dir);
    EXPECT_EQ(off, on);
    EXPECT_NE(off.find("stall.retiring"), std::string::npos)
        << "stall counters must appear in the metrics document";
    EXPECT_NE(off.find("stall.backendMemory"), std::string::npos);
}

TEST(PipeTrace, SweepWritesOneTracePerJob)
{
    const std::string dir = testing::TempDir() + "pipetrace_perjob";
    ASSERT_EQ(::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST, true);
    (void)sweepJson(dir);
    for (const char* isa : {"R", "S", "C"}) {
        const std::string f =
            dir + "/coremark_" + isa + "_8f.kanata";
        std::ifstream is(f);
        EXPECT_TRUE(is.is_open()) << f;
    }
}

// ---------------------------------------------------------------------
// bench_util --metrics-dir / --pipe-trace parse-time validation.
// ---------------------------------------------------------------------

TEST(BenchUtilDeathTest, MetricsDirValidationFailsFast)
{
    const std::string file = testing::TempDir() + "pipetrace_notadir";
    std::ofstream(file) << "x";
    EXPECT_EXIT(
        benchdetail::requireWritableDir("--metrics-dir", file.c_str()),
        ::testing::ExitedWithCode(2), "not a directory");
    EXPECT_EXIT(benchdetail::requireWritableDir("--metrics-dir", ""),
                ::testing::ExitedWithCode(2), "expects a directory");
    EXPECT_EXIT(
        benchdetail::requireWritableDir(
            "--metrics-dir", (file + "/sub").c_str()),
        ::testing::ExitedWithCode(2), "cannot be created");
    std::remove(file.c_str());
}

TEST(BenchUtil, RequireWritableDirCreatesMissingDir)
{
    const std::string dir = testing::TempDir() + "pipetrace_newdir";
    ::rmdir(dir.c_str());
    EXPECT_EQ(benchdetail::requireWritableDir("--metrics-dir",
                                              dir.c_str()),
              dir);
    struct stat st;
    ASSERT_EQ(::stat(dir.c_str(), &st), 0);
    EXPECT_TRUE(S_ISDIR(st.st_mode));
    ::rmdir(dir.c_str());
}

} // namespace
} // namespace ch
