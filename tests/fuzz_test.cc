#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "common/logging.h"
#include "common/prng.h"
#include "emu/emulator.h"
#include "emu/lockstep.h"
#include "isa/encoding.h"
#include "verify/verify.h"

// Where minimized dual-engine divergence reproducers are written
// (tests/CMakeLists.txt points this at <source>/tests/corpus).
#ifndef CH_CORPUS_DIR
#define CH_CORPUS_DIR "."
#endif

namespace ch {
namespace {

/**
 * Differential fuzzing: generate random (but terminating) MiniC programs
 * and require the three ISA compilations to agree on the exit code and
 * output. No external oracle is needed -- three independently scheduled
 * register models agreeing on arbitrary dataflow is a strong check of
 * the backends, the emulators, and the encodings at once.
 */
class ProgramGen
{
  public:
    explicit ProgramGen(uint64_t seed) : prng_(seed) {}

    std::string
    generate()
    {
        std::ostringstream os;
        const int globals = 1 + prng_.nextBelow(3);
        for (int g = 0; g < globals; ++g) {
            os << "long g" << g << " = " << signedConst(100) << ";\n";
        }
        os << "long garr[16];\n";

        // A few helper functions with 1..3 args.
        const int helpers = 1 + prng_.nextBelow(3);
        for (int h = 0; h < helpers; ++h) {
            const int args = 1 + prng_.nextBelow(3);
            os << "long f" << h << "(";
            for (int a = 0; a < args; ++a)
                os << (a ? ", long p" : "long p") << a;
            os << ") {\n";
            os << "    long r = " << expr(args, 2) << ";\n";
            if (prng_.nextBelow(2)) {
                os << "    if (" << expr(args, 1) << " > 0) r = r + "
                   << expr(args, 1) << ";\n";
            }
            os << "    return r;\n}\n";
        }

        os << "int main() {\n";
        os << "    long acc = 1;\n";
        const int vars = 2 + prng_.nextBelow(4);
        for (int v = 0; v < vars; ++v)
            os << "    long v" << v << " = " << signedConst(50) << ";\n";
        const int stmts = 3 + prng_.nextBelow(5);
        for (int s = 0; s < stmts; ++s)
            statement(os, vars, helpers);
        os << "    return (int)(acc & 63);\n}\n";
        return os.str();
    }

  private:
    int64_t
    signedConst(int64_t range)
    {
        return static_cast<int64_t>(prng_.nextBelow(2 * range)) - range;
    }

    /** An arithmetic expression over p0..pN / v0..vN and constants. */
    std::string
    expr(int vars, int depth, bool params = true)
    {
        if (depth == 0 || prng_.nextBelow(3) == 0) {
            switch (prng_.nextBelow(3)) {
              case 0:
                return std::to_string(signedConst(30));
              case 1:
                return (params ? "p" : "v") +
                       std::to_string(prng_.nextBelow(vars));
              default:
                return "g" + std::to_string(prng_.nextBelow(1));
            }
        }
        static const char* ops[] = {"+", "-", "*", "&", "|", "^"};
        const std::string op = ops[prng_.nextBelow(6)];
        return "(" + expr(vars, depth - 1, params) + " " + op + " " +
               expr(vars, depth - 1, params) + ")";
    }

    void
    statement(std::ostringstream& os, int vars, int helpers)
    {
        const auto var = [&] {
            return "v" + std::to_string(prng_.nextBelow(vars));
        };
        switch (prng_.nextBelow(5)) {
          case 0:
            os << "    " << var() << " = "
               << expr(vars, 2, /*params=*/false) << ";\n";
            break;
          case 1: {
            // Bounded loop accumulating into acc.
            const int bound = 1 + prng_.nextBelow(20);
            os << "    for (long i = 0; i < " << bound
               << "; i = i + 1) acc = acc * 3 + (" << var() << " ^ i);\n";
            break;
          }
          case 2:
            os << "    if (" << var() << " > " << signedConst(20)
               << ") acc = acc + " << expr(vars, 1, false)
               << "; else acc = acc - " << var() << ";\n";
            break;
          case 3: {
            const int h = prng_.nextBelow(helpers);
            // Look up arity by regenerating deterministically is hard;
            // call with 3 args -- extra args are a compile error, so use
            // the known pattern: helper h takes (h % 3) + 1 args. To stay
            // simple, call f0 with 1..3 args is risky; instead index
            // garr.
            os << "    garr[" << prng_.nextBelow(16) << "] = acc + "
               << var() << ";\n";
            os << "    acc = acc + garr[" << prng_.nextBelow(16)
               << "] % 97;\n";
            (void)h;
            break;
          }
          default:
            os << "    acc = acc ^ (" << expr(vars, 2, false) << ");\n";
            break;
        }
    }

    Prng prng_;
};

class DifferentialFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(DifferentialFuzz, ThreeIsasAgree)
{
    ProgramGen gen(0xC10C + GetParam() * 7919);
    const std::string src = gen.generate();
    SCOPED_TRACE(src);

    RunResult results[3];
    int ii = 0;
    for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
        Program p = compileMiniC(src, isa);
        results[ii] = runProgram(p, 5'000'000);
        ASSERT_TRUE(results[ii].exited)
            << "did not exit on " << isaName(isa);
        ++ii;
    }
    EXPECT_EQ(results[0].exitCode, results[1].exitCode);
    EXPECT_EQ(results[0].exitCode, results[2].exitCode);
    EXPECT_EQ(results[0].output, results[1].output);
    EXPECT_EQ(results[0].output, results[2].output);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz, ::testing::Range(0, 40));

/**
 * Dual-engine lockstep fuzzing: every random program must execute
 * bit-identically on the switch interpreter and the predecoded
 * threaded-code engine (emu/lockstep.h compares the full DynInst
 * stream, output bytes, and register model). A divergence is minimized
 * by greedy line removal and dumped as a commented .s reproducer under
 * tests/corpus/ — the seed remains the canonical way to regenerate it.
 */
constexpr uint64_t kEngineFuzzCap = 5'000'000;

/** Divergence text for @p p under both engines; empty if they agree. */
std::string
dualEngineDivergence(const Program& p)
{
    DualEngineRunner runner(p);
    const LockstepReport rep = runner.run(kEngineFuzzCap);
    return rep.ok ? std::string{} : rep.divergence;
}

/** Like above, from source; non-compiling variants count as agreeing. */
std::string
tryDivergence(const std::string& src, Isa isa)
{
    try {
        return dualEngineDivergence(compileMiniC(src, isa));
    } catch (const std::exception&) {
        return {};
    }
}

std::vector<std::string>
splitLines(const std::string& src)
{
    std::vector<std::string> lines;
    std::istringstream is(src);
    for (std::string line; std::getline(is, line);)
        lines.push_back(line);
    return lines;
}

/** Greedy line-removal minimization preserving the divergence. */
std::string
minimizeSource(std::string src, Isa isa)
{
    for (bool shrunk = true; shrunk;) {
        shrunk = false;
        const std::vector<std::string> lines = splitLines(src);
        for (size_t i = 0; i < lines.size() && !shrunk; ++i) {
            std::string cand;
            for (size_t j = 0; j < lines.size(); ++j) {
                if (j == i)
                    continue;
                cand += lines[j];
                cand += '\n';
            }
            if (!tryDivergence(cand, isa).empty()) {
                src = cand;
                shrunk = true;
            }
        }
    }
    return src;
}

const char*
isaFileTag(Isa isa)
{
    switch (isa) {
      case Isa::Riscv: return "riscv";
      case Isa::Straight: return "straight";
      case Isa::Clockhands: return "clockhands";
    }
    return "unknown";
}

/** Dump @p src (already minimized) as a .s reproducer; returns path. */
std::string
writeReproducer(const std::string& src, Isa isa, int seed)
{
    const std::string div = tryDivergence(src, isa);
    const Program p = compileMiniC(src, isa);

    std::filesystem::create_directories(CH_CORPUS_DIR);
    const std::string path = std::string(CH_CORPUS_DIR) +
                             "/engine-divergence-s" + std::to_string(seed) +
                             "-" + isaFileTag(isa) + ".s";
    std::ofstream os(path);
    os << "# Dual-engine lockstep divergence (auto-generated by\n"
       << "# fuzz_test EngineLockstepFuzz seed " << seed << ", "
       << isaName(isa) << ").\n"
       << "# " << div << "\n#\n"
       << "# Minimized MiniC source:\n";
    for (const std::string& line : splitLines(src))
        os << "#   " << line << "\n";
    os << "\n";
    for (size_t i = 0; i < p.decoded.size(); ++i)
        os << disassemble(p.isa, p.decoded[i]) << "\n";
    return path;
}

class EngineLockstepFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(EngineLockstepFuzz, EnginesAgreeOnRandomPrograms)
{
    const int seed = GetParam();
    ProgramGen gen(0xD1FF + seed * 31337);
    const std::string src = gen.generate();
    SCOPED_TRACE(src);

    for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
        const std::string div = dualEngineDivergence(compileMiniC(src, isa));
        if (div.empty())
            continue;
        const std::string path =
            writeReproducer(minimizeSource(src, isa), isa, seed);
        ADD_FAILURE() << isaName(isa) << ": engines diverge: " << div
                      << "\nminimized reproducer written to " << path;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineLockstepFuzz,
                         ::testing::Range(0, 200));

/**
 * Dynamic mirror of the static verifier: replays the emulator's operand
 * model and checks that no executed read reaches a slot/register that
 * was never dynamically written, and that STRAIGHT reads never land on
 * a valueless (junk) slot. A program accepted by verifyProgram() must
 * pass this for any input, so the pair is a soundness cross-check.
 */
/** RISC callee-saved registers (integer s0-s11, FP fs0-fs11). */
bool
riscCalleeSaved(uint8_t reg)
{
    return reg == 8 || reg == 9 || (reg >= 18 && reg <= 27) ||
           reg == 40 || reg == 41 || (reg >= 50 && reg <= 59);
}

class OperandCheckSink : public TraceSink
{
  public:
    explicit OperandCheckSink(Isa isa) : isa_(isa)
    {
        handCount_.fill(0);
        handCount_[HandS] = 1;  // pre-written initial SP
        valueSlot_.fill(false);
    }

    void
    onInst(const DynInst& di) override
    {
        const OpInfo& info = di.info();
        if (info.numSrcs >= 1)
            checkSrc(di, di.src1, di.src1Hand, di.prod1);
        if (info.numSrcs >= 2)
            checkSrc(di, di.src2, di.src2Hand, di.prod2);

        switch (isa_) {
          case Isa::Riscv:
            if (info.hasDst && di.dst != kRegZero)
                written_[di.dst] = true;
            break;
          case Isa::Straight:
            valueSlot_[ringCount_ % 128] = info.hasDst;
            ++ringCount_;
            if (di.op == Op::SPADDI)
                spWritten_ = true;
            break;
          case Isa::Clockhands:
            if (info.hasDst)
                ++handCount_[di.dst];
            break;
        }
    }

    std::vector<std::string> failures;

  private:
    void
    fail(const DynInst& di, const std::string& what)
    {
        if (failures.size() < 10)
            failures.push_back(concat("seq ", di.seq, " pc 0x", std::hex,
                                      di.pc, ": ", what));
    }

    void
    checkSrc(const DynInst& di, uint8_t src, uint8_t hand, uint64_t prod)
    {
        switch (isa_) {
          case Isa::Riscv:
            if (src == kRegZero)
                return;
            if (written_[src]) {
                if (prod == kNoProducer)
                    fail(di, "written register read has no producer");
            } else if (src != kRegSp && src != kRegRa &&
                       !riscCalleeSaved(src)) {
                // Callee-saved registers may be read (saved) before any
                // write: prologues preserve whatever the caller had.
                fail(di, concat("read of never-written register ",
                                riscRegName(src)));
            }
            return;
          case Isa::Straight:
            if (src == kStraightZeroDist)
                return;
            if (src == kStraightSpBase) {
                if (spWritten_ && prod == kNoProducer)
                    fail(di, "SP read lost its producer");
                return;
            }
            if (src > ringCount_) {
                fail(di, concat("distance ", int{src},
                                " reaches beyond the ", ringCount_,
                                " slots written"));
                return;
            }
            if (!valueSlot_[(ringCount_ - src) % 128])
                fail(di, concat("distance ", int{src},
                                " reads a junk slot"));
            return;
          case Isa::Clockhands: {
            if (hand == HandS && src == kHandZeroDist)
                return;
            if (src >= handCount_[hand]) {
                // v is the callee-saved hand: prologues save its caller
                // contents before the callee ever writes it.
                if (hand != HandV)
                    fail(di, concat("hand ", handName(hand), " distance ",
                                    int{src}, " reaches beyond ",
                                    handCount_[hand], " writes"));
                return;
            }
            const uint64_t slot = handCount_[hand] - 1 - src;
            if (prod == kNoProducer && !(hand == HandS && slot == 0))
                fail(di, concat("hand ", handName(hand), " distance ",
                                int{src}, " read has no producer"));
            return;
          }
        }
    }

    Isa isa_;
    std::array<bool, 64> written_{};
    uint64_t ringCount_ = 0;
    bool spWritten_ = false;
    std::array<bool, 128> valueSlot_;
    std::array<uint64_t, kNumHands> handCount_;
};

class VerifierFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(VerifierFuzz, AcceptedProgramsPassDynamicOperandChecks)
{
    ProgramGen gen(0xFACE + GetParam() * 104729);
    const std::string src = gen.generate();
    SCOPED_TRACE(src);

    for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
        const Program p = compileMiniC(src, isa);
        const VerifyResult vres = verifyProgram(p);
        ASSERT_TRUE(vres.ok())
            << "verifier rejected a compiled program on " << isaName(isa)
            << ":\n" << formatIssues(p, vres);

        OperandCheckSink sink(isa);
        const RunResult r = runProgram(p, 5'000'000, &sink);
        ASSERT_TRUE(r.exited) << "did not exit on " << isaName(isa);
        for (const std::string& f : sink.failures)
            ADD_FAILURE() << isaName(isa) << ": " << f;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierFuzz, ::testing::Range(0, 15));

/** Helper-function calls, separately (fixed arity so it always compiles). */
TEST(DifferentialFuzz, CallHeavyPrograms)
{
    Prng prng(77);
    for (int trial = 0; trial < 10; ++trial) {
        std::ostringstream os;
        os << "long mix(long a, long b) { return a * 3 + (b ^ a); }\n";
        os << "long twist(long a) { return mix(a, a >> 2) - 7; }\n";
        os << "int main() {\n    long acc = " << prng.nextBelow(100)
           << ";\n";
        const int n = 3 + prng.nextBelow(6);
        for (int i = 0; i < n; ++i) {
            if (prng.nextBelow(2)) {
                os << "    acc = mix(acc, " << prng.nextBelow(50)
                   << ");\n";
            } else {
                os << "    for (long i = 0; i < "
                   << (1 + prng.nextBelow(8))
                   << "; ++i) acc = twist(acc) & 0xffff;\n";
            }
        }
        os << "    return (int)(acc & 63);\n}\n";
        const std::string src = os.str();
        SCOPED_TRACE(src);

        int64_t expected = 0;
        bool first = true;
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            RunResult r = runProgram(compileMiniC(src, isa), 5'000'000);
            ASSERT_TRUE(r.exited);
            if (first) {
                expected = r.exitCode;
                first = false;
            } else {
                EXPECT_EQ(r.exitCode, expected) << isaName(isa);
            }
        }
    }
}

} // namespace
} // namespace ch
