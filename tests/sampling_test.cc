/**
 * @file
 * Sampled-simulation suite (`ctest -L sampling`, docs/PERFORMANCE.md):
 *
 *  - the sampled IPC estimate tracks the full-run reference across the
 *    5x3 corpus and the reported 95% CI covers the reference on nearly
 *    every point,
 *  - functional warming earns its keep: corpus error with warming on is
 *    lower than with warming off,
 *  - sampled sweeps are deterministic across --jobs values,
 *  - with sampling disabled nothing changes: no sampling schema fields,
 *    no sample.* counters, byte-identical metrics output,
 *  - the six stall.* counters sum exactly to the measured cycles in
 *    sampled mode (the measured-window stall invariant),
 *  - a trace too short for one interval falls back to the exact replay,
 *    and
 *  - shard-parallel sampling (sc.shards > 1) tracks the reference and
 *    keeps the stall invariant, is deterministic across --jobs, clamps
 *    K to the interval count, honors the shard warm-up override, and at
 *    K=1 emits byte-identical output with no shard fields anywhere.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.h"
#include "runner/metrics.h"
#include "runner/runner.h"
#include "runner/trace_cache.h"
#include "trace/trace_buffer.h"
#include "uarch/sampling.h"
#include "uarch/sim.h"
#include "uarch/stall_account.h"
#include "workloads/workloads.h"

namespace ch {
namespace {

constexpr uint64_t kCap = 200'000;

/** Cap for the corpus-accuracy tests: long enough that the cold-start
 *  ramp is a small fraction of the reference and the stream has a
 *  steady state worth sampling (at 200k insts everything is cold and
 *  there is nothing for warming to preserve). */
constexpr uint64_t kCorpusCap = 1'000'000;

/** The microbench's primary shape, scaled to the cap: 40 intervals, 5%
 *  measured, detailed warmup sized to refill the ROB-deep backend. */
SamplingConfig
testConfig(uint64_t cap)
{
    SamplingConfig sc;
    sc.intervalInsts = cap / 40;
    sc.sampleInsts = sc.intervalInsts / 20;
    sc.warmupInsts =
        std::min<uint64_t>(2048, sc.intervalInsts - sc.sampleInsts);
    return sc;
}

/** Captured committed stream, shared across tests via the global cache. */
const TraceBuffer&
corpusTrace(const std::string& name, Isa isa, uint64_t cap = kCorpusCap)
{
    const auto t =
        traceCache().get(name, isa, cap, compiledWorkload(name, isa));
    CH_ASSERT(t, "trace capture failed for ", name);
    return *t;
}

TEST(SampledSim, EstimateTracksReferenceAndCiCoversCorpus)
{
    const MachineConfig cfg = MachineConfig::preset(8);
    int covered = 0, points = 0;
    double errSum = 0;
    for (const auto& w : workloads()) {
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            SCOPED_TRACE(w.name + "/" + std::string(isaName(isa)));
            const TraceBuffer& trace = corpusTrace(w.name, isa);
            const SimResult ref = simulateReplay(trace, isa, cfg);
            const SimResult s =
                simulateSampled(trace, isa, cfg, testConfig(kCorpusCap));

            ASSERT_TRUE(s.sampled);
            EXPECT_EQ(s.insts, ref.insts);
            EXPECT_GE(s.sample.intervals, 2u);
            ASSERT_GT(s.sample.ipcMean, 0.0);

            const double diff = std::fabs(s.ipc() - ref.ipc());
            errSum += diff / ref.ipc();
            covered += diff <= s.sample.ipcCi95 ? 1 : 0;
            ++points;
        }
    }
    // 95% CIs are allowed to miss occasionally; 14/15 matches the
    // acceptance bar and the mean error must stay well-behaved.
    EXPECT_GE(covered, points - 1);
    EXPECT_LT(errSum / points, 0.05);
}

TEST(SampledSim, FunctionalWarmingReducesCorpusError)
{
    const MachineConfig cfg = MachineConfig::preset(8);
    double errOn = 0, errOff = 0;
    for (const auto& w : workloads()) {
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            const TraceBuffer& trace = corpusTrace(w.name, isa);
            const double ref = simulateReplay(trace, isa, cfg).ipc();

            SamplingConfig on = testConfig(kCorpusCap);
            SamplingConfig off = testConfig(kCorpusCap);
            off.functionalWarming = false;
            const SimResult sOn = simulateSampled(trace, isa, cfg, on);
            const SimResult sOff = simulateSampled(trace, isa, cfg, off);
            EXPECT_GT(sOn.sample.warmedInsts, 0u);
            EXPECT_EQ(sOff.sample.warmedInsts, 0u);
            errOn += std::fabs(sOn.ipc() - ref) / ref;
            errOff += std::fabs(sOff.ipc() - ref) / ref;
        }
    }
    EXPECT_LT(errOn, errOff);
}

TEST(SampledSim, MeasuredStallCountersSumToMeasuredCycles)
{
    const MachineConfig cfg = MachineConfig::preset(8);
    for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
        SCOPED_TRACE(isaName(isa));
        const TraceBuffer& trace = corpusTrace("coremark", isa);
        const SimResult s =
            simulateSampled(trace, isa, cfg, testConfig(kCorpusCap));
        ASSERT_TRUE(s.sampled);

        uint64_t stallSum = 0;
        for (int c = 0; c < kNumStallCats; ++c)
            stallSum += s.stats.value(stallCatCounterName(c));
        EXPECT_EQ(stallSum, s.stats.value("sample.cycles.measured"));
        EXPECT_GT(stallSum, 0u);
        EXPECT_EQ(s.stats.value("sample.insts.measured"),
                  s.sample.measuredInsts);
    }
}

/** One small sampled sweep; returns the deterministic metrics JSON. */
std::string
sweepJson(int jobs, const SamplingConfig& sampling)
{
    RunnerOptions opt;
    opt.jobs = jobs;
    opt.sampling = sampling;
    SweepRunner runner(opt);
    for (const auto& w : workloads()) {
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            JobSpec spec;
            spec.id = w.name + "/" + std::string(isaName(isa));
            spec.workload = w.name;
            spec.isa = isa;
            spec.cfg = MachineConfig::preset(8);
            spec.maxInsts = kCap;
            runner.addSim(spec);
        }
    }
    MetricsOptions mopt;
    mopt.bench = "sampling_test";
    for (const JobResult& r : runner.run())
        EXPECT_TRUE(r.ok) << r.spec.id << ": " << r.error;
    return metricsJsonString(mopt, runner.run());
}

TEST(SampledSim, SweepIsDeterministicAcrossJobCounts)
{
    const std::string j1 = sweepJson(1, testConfig(kCap));
    const std::string j4 = sweepJson(4, testConfig(kCap));
    EXPECT_EQ(j1, j4);
    // Sampled runs are distinguishable in the schema.
    EXPECT_NE(j1.find("\"sampling\""), std::string::npos);
    EXPECT_NE(j1.find("\"sample.ipc\""), std::string::npos);
    EXPECT_NE(j1.find("\"sample.intervals\""), std::string::npos);
}

TEST(SampledSim, SamplingOffEmitsNoSampleFieldsAndIsByteStable)
{
    const std::string j1 = sweepJson(1, SamplingConfig{});
    const std::string j4 = sweepJson(4, SamplingConfig{});
    EXPECT_EQ(j1, j4);
    EXPECT_EQ(j1.find("\"sampling\""), std::string::npos);
    EXPECT_EQ(j1.find("sample."), std::string::npos);
}

TEST(SampledSim, ShortTraceFallsBackToExactReplay)
{
    const MachineConfig cfg = MachineConfig::preset(8);
    const TraceBuffer& trace =
        corpusTrace("coremark", Isa::Clockhands, kCap);

    SamplingConfig sc;
    sc.intervalInsts = kCap * 2;  // no complete interval fits
    sc.sampleInsts = sc.intervalInsts / 20;
    const SimResult s =
        simulateSampled(trace, Isa::Clockhands, cfg, sc);
    const SimResult ref = simulateReplay(trace, Isa::Clockhands, cfg);

    EXPECT_FALSE(s.sampled);
    EXPECT_EQ(s.cycles, ref.cycles);
    EXPECT_EQ(s.insts, ref.insts);
    EXPECT_EQ(s.stats.dump(), ref.stats.dump());
    EXPECT_EQ(s.stats.value("sample.intervals"), 0u);
}

TEST(SampledSim, ShardedEstimateTracksReferenceAndKeepsStallInvariant)
{
    const MachineConfig cfg = MachineConfig::preset(8);
    double errSum = 0;
    int points = 0;
    for (const auto& w : workloads()) {
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            SCOPED_TRACE(w.name + "/" + std::string(isaName(isa)));
            const TraceBuffer& trace = corpusTrace(w.name, isa);
            const SimResult ref = simulateReplay(trace, isa, cfg);

            SamplingConfig sc = testConfig(kCorpusCap);
            sc.shards = 4;
            const SimResult s = simulateSampled(trace, isa, cfg, sc);

            ASSERT_TRUE(s.sampled);
            EXPECT_EQ(s.insts, ref.insts);
            EXPECT_EQ(s.stats.value("sample.shards"), 4u);
            EXPECT_EQ(s.stats.value("sample.shard.warmInsts"),
                      sc.intervalInsts);
            ASSERT_GT(s.sample.ipcMean, 0.0);

            uint64_t stallSum = 0;
            for (int c = 0; c < kNumStallCats; ++c)
                stallSum += s.stats.value(stallCatCounterName(c));
            EXPECT_EQ(stallSum, s.stats.value("sample.cycles.measured"));
            EXPECT_GT(stallSum, 0u);

            errSum += std::fabs(s.ipc() - ref.ipc()) / ref.ipc();
            ++points;
        }
    }
    EXPECT_LT(errSum / points, 0.05);
}

TEST(SampledSim, ShardedRunIsDeterministic)
{
    const MachineConfig cfg = MachineConfig::preset(8);
    const TraceBuffer& trace = corpusTrace("coremark", Isa::Clockhands);
    SamplingConfig sc = testConfig(kCorpusCap);
    sc.shards = 4;
    const SimResult a = simulateSampled(trace, Isa::Clockhands, cfg, sc);
    const SimResult b = simulateSampled(trace, Isa::Clockhands, cfg, sc);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats.dump(), b.stats.dump());
}

TEST(SampledSim, ShardedSweepIsDeterministicAcrossJobCounts)
{
    SamplingConfig sc = testConfig(kCap);
    sc.shards = 4;
    const std::string j1 = sweepJson(1, sc);
    const std::string j4 = sweepJson(4, sc);
    EXPECT_EQ(j1, j4);
    // K>1 runs are distinguishable in the schema.
    EXPECT_NE(j1.find("\"shards\": 4"), std::string::npos);
    EXPECT_NE(j1.find("\"shard_warmup_insts\""), std::string::npos);
}

TEST(SampledSim, SingleShardIsByteIdenticalWithNoShardFields)
{
    // An explicit --sample-shards 1 must be indistinguishable from a
    // binary that predates sharding: same metrics bytes, no shard keys.
    SamplingConfig explicit1 = testConfig(kCap);
    explicit1.shards = 1;
    const std::string jDefault = sweepJson(1, testConfig(kCap));
    const std::string jExplicit = sweepJson(1, explicit1);
    EXPECT_EQ(jDefault, jExplicit);
    EXPECT_EQ(jDefault.find("shards"), std::string::npos);
    EXPECT_EQ(jDefault.find("sample.shard"), std::string::npos);

    const MachineConfig cfg = MachineConfig::preset(8);
    const TraceBuffer& trace = corpusTrace("coremark", Isa::Riscv);
    const SimResult s =
        simulateSampled(trace, Isa::Riscv, cfg, explicit1);
    ASSERT_TRUE(s.sampled);
    EXPECT_EQ(s.stats.value("sample.shards"), 0u);
    EXPECT_TRUE(s.sample.shardWallMs.empty());
}

TEST(SampledSim, ShardCountClampsToIntervalCount)
{
    const MachineConfig cfg = MachineConfig::preset(8);
    const TraceBuffer& trace = corpusTrace("coremark", Isa::Riscv, kCap);

    SamplingConfig sc = testConfig(kCap);  // 40 intervals at kCap
    sc.shards = 64;                        // more shards than intervals
    const SimResult s = simulateSampled(trace, Isa::Riscv, cfg, sc);
    ASSERT_TRUE(s.sampled);
    EXPECT_EQ(s.stats.value("sample.shards"), s.sample.intervals);
    EXPECT_EQ(s.sample.shardWallMs.size(), s.sample.intervals);
}

TEST(SampledSim, ShardWarmupOverrideIsHonored)
{
    const MachineConfig cfg = MachineConfig::preset(8);
    const TraceBuffer& trace = corpusTrace("coremark", Isa::Straight);

    SamplingConfig sc = testConfig(kCorpusCap);
    sc.shards = 2;
    sc.shardWarmupInsts = 5000;
    const SimResult s = simulateSampled(trace, Isa::Straight, cfg, sc);
    ASSERT_TRUE(s.sampled);
    EXPECT_EQ(s.stats.value("sample.shard.warmInsts"), 5000u);
    EXPECT_EQ(s.sample.shardWarmInsts, 5000u);
}

TEST(SampledSim, MalformedConfigIsRejected)
{
    const MachineConfig cfg = MachineConfig::preset(8);
    const TraceBuffer& trace = corpusTrace("coremark", Isa::Riscv);

    SamplingConfig sc;
    sc.intervalInsts = 1000;
    sc.sampleInsts = 2000;  // measured window larger than the interval
    EXPECT_FALSE(sc.wellFormed());
    EXPECT_THROW(simulateSampled(trace, Isa::Riscv, cfg, sc),
                 PanicError);

    sc.sampleInsts = 600;
    sc.warmupInsts = 600;   // warmup + sample exceed the interval
    EXPECT_FALSE(sc.wellFormed());
    EXPECT_THROW(simulateSampled(trace, Isa::Riscv, cfg, sc),
                 PanicError);
}

} // namespace
} // namespace ch
