#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "backend/backend.h"
#include "emu/emulator.h"
#include "frontc/codegen.h"
#include "frontc/lexer.h"
#include "frontc/parser.h"
#include "ir/analysis.h"
#include "isa/encoding.h"
#include "mem/memory.h"
#include "trace/analyzers.h"

namespace ch {
namespace {

// ---------------------------------------------------------------------
// Memory subsystem corners.
// ---------------------------------------------------------------------

TEST(Memory, PageStraddlingAccess)
{
    Memory mem;
    const uint64_t edge = Memory::kPageSize - 4;
    mem.write(edge, 8, 0x1122334455667788ull);
    EXPECT_EQ(mem.read(edge, 8), 0x1122334455667788ull);
    EXPECT_EQ(mem.read(edge, 4), 0x55667788u);
    EXPECT_EQ(mem.read(edge + 4, 4), 0x11223344u);
    EXPECT_GE(mem.residentPages(), 2u);
}

TEST(Memory, BlockCopyRoundTrip)
{
    Memory mem;
    std::vector<uint8_t> data(10000);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i * 7);
    mem.writeBlock(Memory::kPageSize - 100, data.data(), data.size());
    std::vector<uint8_t> back(data.size());
    mem.readBlock(Memory::kPageSize - 100, back.data(), back.size());
    EXPECT_EQ(back, data);
}

TEST(Memory, ZeroInitialized)
{
    Memory mem;
    EXPECT_EQ(mem.read(0x123456, 8), 0u);
    EXPECT_EQ(mem.readByte(0xabcdef), 0u);
}

// ---------------------------------------------------------------------
// The paper's Fig. 6 walkthrough: a pointer loop whose hands rotate at
// different speeds. This is the paper's own worked example of the ISA's
// architectural state, executed literally.
// ---------------------------------------------------------------------

TEST(PaperNarrative, Fig6PointerLoop)
{
    // Fig. 6's loop body verbatim: at the loop top t[0] = i and
    // t[1] = p; the two addi writes restore exactly that layout for the
    // next iteration, while v (holding 42 and the bound) never rotates.
    Program p = assemble(Isa::Clockhands, R"(
        .data
    buf: .zero 80
        .text
        la t, buf            # t[0] = p = buf
        addi t, zero, 0      # t[0] = i = 0, t[1] = p
        addi v, zero, 10     # loop bound  (v holds constants)
        addi v, zero, 42     # the stored value: v[0]=42, v[1]=10
    .loop:
        sw v[0], 0(t[1])     # *p = 42
        addi t, t[1], 4      # p += 4   (reads old p at t[1])
        addi t, t[1], 1      # i += 1   (old i is now at t[1])
        bne t[0], v[1], .loop
        ecall t, zero, 0
    )");
    Emulator emu(p);
    RunResult r = emu.run(100000);
    ASSERT_TRUE(r.exited);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(emu.memory().read(p.symbol("buf") + 4 * i, 4), 42u)
            << "element " << i;
}

// ---------------------------------------------------------------------
// Disassembler round-trips through the assembler.
// ---------------------------------------------------------------------

TEST(Disassembler, TextRoundTripsThroughAssembler)
{
    // Assemble, disassemble every instruction, re-assemble the dump, and
    // compare the machine words (branch offsets print as literals, which
    // the assembler accepts).
    const char* src = R"(
        addi t, zero, 5
        addi u, zero, 3
        add t, t[0], u[0]
        mul t, t[0], t[1]
        sw t[0], 8(s[0])
        ld u, 8(s[0])
        beq u[0], t[0], 8
        nop
        ecall t, zero, 0
    )";
    Program p1 = assemble(Isa::Clockhands, src);
    std::string dump;
    for (const auto& inst : p1.decoded)
        dump += disassemble(Isa::Clockhands, inst) + "\n";
    Program p2 = assemble(Isa::Clockhands, dump);
    ASSERT_EQ(p1.text.size(), p2.text.size());
    for (size_t i = 0; i < p1.text.size(); ++i)
        EXPECT_EQ(p1.text[i], p2.text[i]) << "inst " << i << ": "
                                          << disassemble(Isa::Clockhands,
                                                         p1.decoded[i]);
}

// ---------------------------------------------------------------------
// Lexer / parser corners.
// ---------------------------------------------------------------------

TEST(Lexer, TokenKindsAndEscapes)
{
    auto toks = lexMiniC("long x = 0x1f; double d = 2.5e1; char c = '\\n'; "
                         "/* block */ // line\n \"hi\\t\"");
    ASSERT_GE(toks.size(), 12u);
    EXPECT_EQ(toks[0].kind, Tok::Keyword);
    EXPECT_EQ(toks[3].intValue, 0x1f);
    bool sawFloat = false, sawChar = false, sawStr = false;
    for (const auto& t : toks) {
        if (t.kind == Tok::FloatLit) {
            EXPECT_DOUBLE_EQ(t.floatValue, 25.0);
            sawFloat = true;
        }
        if (t.kind == Tok::CharLit) {
            EXPECT_EQ(t.intValue, '\n');
            sawChar = true;
        }
        if (t.kind == Tok::StrLit) {
            EXPECT_EQ(t.strValue, "hi\t");
            sawStr = true;
        }
    }
    EXPECT_TRUE(sawFloat && sawChar && sawStr);
}

TEST(Lexer, Errors)
{
    EXPECT_THROW(lexMiniC("long x = `;"), FatalError);
    EXPECT_THROW(lexMiniC("/* unterminated"), FatalError);
    EXPECT_THROW(lexMiniC("char c = '\\q';"), FatalError);
}

TEST(Parser, StructLayoutRespectsAlignment)
{
    Ast ast = parseMiniC(R"(
        struct Mixed { char a; long b; char c; int d; };
        struct Mixed g;
        int main() { return (int)sizeof(struct Mixed); }
    )");
    const StructDef* def = ast.structs.at("Mixed");
    EXPECT_EQ(def->findField("a")->offset, 0);
    EXPECT_EQ(def->findField("b")->offset, 8);   // aligned up
    EXPECT_EQ(def->findField("c")->offset, 16);
    EXPECT_EQ(def->findField("d")->offset, 20);  // 4-aligned
    EXPECT_EQ(def->size, 24);
    EXPECT_EQ(def->align, 8);
}

TEST(Parser, ConstantExpressionsInArrayDims)
{
    Ast ast = parseMiniC("long a[4 * 8 + 2]; int main() { return 0; }");
    EXPECT_EQ(ast.globals[0].type->arrayLen, 34);
    EXPECT_THROW(parseMiniC("long a[x]; int main(){return 0;}"),
                 FatalError);
}

TEST(Parser, SyntaxErrorsCarryLineNumbers)
{
    try {
        parseMiniC("int main() {\n  long x = ;\n}");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

// ---------------------------------------------------------------------
// VCode structure and dumping.
// ---------------------------------------------------------------------

TEST(VCode, DumpMentionsEverything)
{
    VModule mod = compileToVCode(R"(
        long g = 3;
        long f(long x) { return x * g; }
        int main() {
            long arr[4];
            arr[0] = f(2);
            return (int)arr[0];
        }
    )");
    const VFunc* main = mod.findFunc("main");
    ASSERT_NE(main, nullptr);
    const std::string mainDump = dumpVFunc(*main);
    EXPECT_NE(mainDump.find("call"), std::string::npos);
    EXPECT_NE(mainDump.find("frameaddr"), std::string::npos);
    EXPECT_NE(mainDump.find("ret"), std::string::npos);
    // The global load appears in f, which reads g.
    const std::string fDump = dumpVFunc(*mod.findFunc("f"));
    EXPECT_NE(fDump.find("loadaddr"), std::string::npos);
}

TEST(VCode, SuccessorsOfAllTerminators)
{
    VModule mod = compileToVCode(R"(
        int main() {
            long a = 1;
            for (long i = 0; i < 3; ++i) {
                if (i & 1) a += 2;
            }
            return (int)a;
        }
    )");
    const VFunc* f = mod.findFunc("main");
    CfgInfo cfg = buildCfg(*f);
    // Every reachable non-return block has at least one successor, and
    // every successor edge has a matching predecessor edge.
    for (const auto& blk : f->blocks) {
        if (!cfg.reachable(blk.id))
            continue;
        const bool returns = !blk.insts.empty() &&
                             blk.insts.back().vop == VOp::Ret;
        if (!returns)
            EXPECT_FALSE(cfg.succs[blk.id].empty()) << "bb" << blk.id;
        for (int sIdx : cfg.succs[blk.id]) {
            const auto& preds = cfg.preds[sIdx];
            EXPECT_NE(std::find(preds.begin(), preds.end(), blk.id),
                      preds.end());
        }
    }
}

// ---------------------------------------------------------------------
// TeeSink fan-out and end-to-end measurement consistency.
// ---------------------------------------------------------------------

TEST(TeeSink, AnalyzersSeeTheSameStream)
{
    Program p = compileMiniC(R"(
        int main() {
            long acc = 0;
            for (long i = 0; i < 500; ++i) acc += i;
            return (int)(acc & 63);
        }
    )", Isa::Clockhands);
    MixAnalyzer mix;
    LifetimeAnalyzer lt(Isa::Clockhands);
    HandUsageAnalyzer hu;
    TeeSink tee;
    tee.add(&mix);
    tee.add(&lt);
    tee.add(&hu);
    RunResult r = runProgram(p, ~0ull, &tee);
    lt.finish();
    EXPECT_EQ(mix.total(), r.instCount);
    EXPECT_EQ(hu.total(), r.instCount);
    EXPECT_EQ(lt.totalInsts(), r.instCount);
    // Writes counted by the hand analyzer = value-producing instructions
    // = definitions closed by the lifetime analyzer.
    const uint64_t writes = hu.writes(HandT) + hu.writes(HandU) +
                            hu.writes(HandV) + hu.writes(HandS);
    EXPECT_EQ(writes, lt.overall().definitions());
}

// ---------------------------------------------------------------------
// Assembler corner cases not covered elsewhere.
// ---------------------------------------------------------------------

TEST(AssemblerCorners, LabelsOnSameLineAndEquDirective)
{
    Program p = assemble(Isa::Riscv, R"(
        .equ BOUND, 7
    start: top: addi a0, zero, 3
        addi a1, zero, 0
        ret
    )");
    EXPECT_EQ(p.symbol("start"), p.symbol("top"));
    EXPECT_EQ(p.symbol("BOUND"), 7u);
}

TEST(AssemblerCorners, NegativeAndHexImmediates)
{
    Program p = assemble(Isa::Riscv, R"(
        addi a0, zero, -42
        andi a0, a0, 0xff
        ret
    )");
    EXPECT_EQ(p.decoded[0].imm, -42);
    EXPECT_EQ(p.decoded[1].imm, 0xff);
}

TEST(AssemblerCorners, JalSugarAndExplicitLink)
{
    Program p = assemble(Isa::Riscv, R"(
        jal target
        jal t0, target
    target:
        ret
    )");
    EXPECT_EQ(p.decoded[0].dst, kRegRa);
    EXPECT_EQ(p.decoded[1].dst, 5);  // t0
}

// ---------------------------------------------------------------------
// Emulator: FP corner semantics shared by all ISAs.
// ---------------------------------------------------------------------

int64_t
evalFp(const std::string& body)
{
    Program p = assemble(Isa::Riscv, body + "\n ecall zero, a0, 0\n");
    RunResult r = runProgram(p);
    EXPECT_TRUE(r.exited);
    return r.exitCode;
}

TEST(EmulatorFp, MinMaxAndSignInjection)
{
    EXPECT_EQ(evalFp(R"(
        li a0, -3
        fcvt.d.l f0, a0
        li a0, 5
        fcvt.d.l f1, a0
        fmin.d f2, f0, f1
        fcvt.l.d a0, f2
    )"), -3);
    EXPECT_EQ(evalFp(R"(
        li a0, -3
        fcvt.d.l f0, a0
        fsgnjx.d f0, f0, f0     # abs via sign xor
        fcvt.l.d a0, f0
    )"), 3);
    EXPECT_EQ(evalFp(R"(
        li a0, 7
        fcvt.d.l f0, a0
        fmv.x.d a1, f0
        fmv.d.x f1, a1
        fcvt.l.d a0, f1
    )"), 7);
}

TEST(EmulatorFp, ConversionClamps)
{
    // A double far beyond int64 range converts to the clamped extreme.
    EXPECT_EQ(evalFp(R"(
        li a0, 1000000000
        fcvt.d.l f0, a0
        fmul.d f0, f0, f0       # 1e18
        li a0, 100
        fcvt.d.l f1, a0
        fmul.d f0, f0, f1       # 1e20 > 2^63
        fcvt.l.d a0, f0
        srai a0, a0, 56         # sign-free summary of the clamp
    )"), 0x7fffffffffffffffll >> 56);
}

// ---------------------------------------------------------------------
// Checkpoint-size interplay with the encoding widths (Table 1 inputs).
// ---------------------------------------------------------------------

TEST(Consistency, LogicalRegisterCounts)
{
    // Clockhands: 4 hands x 16 - 1 (zero) = 63 named values + zero.
    EXPECT_EQ(kNumHands * kHandDepth - 1, 63);
    // STRAIGHT: 126 distances + zero + SP encoding fill the 7-bit field.
    EXPECT_EQ(kStraightMaxDist + 2, 128);
    // RISC: 31 writable int + 32 fp = 63 writable logical registers.
    EXPECT_EQ(kNumIntRegs - 1 + kNumFpRegs, 63);
}

} // namespace
} // namespace ch
