/**
 * @file
 * Capture/replay correctness suite (docs/PERFORMANCE.md):
 *
 *  - every DynInst field round-trips bit-for-bit through the TraceBuffer
 *    encoding for all three ISAs,
 *  - a CycleSim fed by replay produces byte-identical results (cycles,
 *    stats, exit info) to one fed directly by the emulator, across the
 *    5x3 lockstep corpus,
 *  - the TraceCache captures once per (workload, ISA, maxInsts) and its
 *    byte budget triggers the re-emulation fallback without changing any
 *    metric,
 *  - the Memory hot-page cache is architecturally invisible: the same
 *    program produces the same RunResult with the cache disabled,
 *  - the keyframe index records decoder sync points on interval
 *    boundaries and replayRange() reproduces any slice of the stream
 *    bit-for-bit, with or without keyframes to seek from, and
 *  - replaying a budget-truncated capture raises a structured error in
 *    every build flavor.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.h"
#include "common/prng.h"
#include "emu/emulator.h"
#include "runner/runner.h"
#include "runner/trace_cache.h"
#include "trace/trace_buffer.h"
#include "uarch/sim.h"
#include "workloads/workloads.h"

namespace ch {
namespace {

constexpr uint64_t kCap = 200'000;

/** Records the raw DynInst stream for field-level comparison. */
class RecordSink : public TraceSink
{
  public:
    void onInst(const DynInst& di) override { insts_.push_back(di); }

    const std::vector<DynInst>& insts() const { return insts_; }

  private:
    std::vector<DynInst> insts_;
};

void
expectSameInst(const DynInst& a, const DynInst& b, size_t i)
{
    ASSERT_EQ(a.seq, b.seq) << "record " << i;
    ASSERT_EQ(a.pc, b.pc) << "record " << i;
    ASSERT_EQ(a.op, b.op) << "record " << i;
    ASSERT_EQ(a.dst, b.dst) << "record " << i;
    ASSERT_EQ(a.src1, b.src1) << "record " << i;
    ASSERT_EQ(a.src2, b.src2) << "record " << i;
    ASSERT_EQ(a.src1Hand, b.src1Hand) << "record " << i;
    ASSERT_EQ(a.src2Hand, b.src2Hand) << "record " << i;
    ASSERT_EQ(a.imm, b.imm) << "record " << i;
    ASSERT_EQ(a.prod1, b.prod1) << "record " << i;
    ASSERT_EQ(a.prod2, b.prod2) << "record " << i;
    ASSERT_EQ(a.memAddr, b.memAddr) << "record " << i;
    ASSERT_EQ(a.memValue, b.memValue) << "record " << i;
    ASSERT_EQ(a.nextPc, b.nextPc) << "record " << i;
    ASSERT_EQ(a.taken, b.taken) << "record " << i;
}

TEST(TraceBuffer, RoundTripsEveryFieldOnAllIsas)
{
    for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
        SCOPED_TRACE(isaName(isa));
        const Program& prog = compiledWorkload("coremark", isa);

        TraceBuffer buf;
        RecordSink direct;
        TeeSink tee;
        tee.add(&buf);
        tee.add(&direct);
        runProgram(prog, kCap, &tee);

        RecordSink replayed;
        buf.replay(replayed);

        ASSERT_EQ(buf.instCount(), direct.insts().size());
        ASSERT_EQ(replayed.insts().size(), direct.insts().size());
        for (size_t i = 0; i < direct.insts().size(); ++i)
            expectSameInst(direct.insts()[i], replayed.insts()[i], i);

        // The encoding earns its keep: well under raw DynInst size.
        EXPECT_LT(buf.byteSize(), direct.insts().size() * sizeof(DynInst));
    }
}

TEST(TraceBuffer, ReplaySimMatchesDirectSimOnLockstepCorpus)
{
    const MachineConfig cfg = MachineConfig::preset(8);
    for (const auto& w : workloads()) {
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            SCOPED_TRACE(w.name + "/" + std::string(isaName(isa)));
            const Program& prog = compiledWorkload(w.name, isa);

            TraceBuffer buf;
            RunResult run = runProgram(prog, kCap, &buf);
            buf.setRunOutcome(run.exited, run.exitCode);

            const SimResult direct = simulate(prog, cfg, kCap);
            const SimResult replay = simulateReplay(buf, isa, cfg);

            EXPECT_EQ(direct.cycles, replay.cycles);
            EXPECT_EQ(direct.insts, replay.insts);
            EXPECT_EQ(direct.exited, replay.exited);
            EXPECT_EQ(direct.exitCode, replay.exitCode);
            EXPECT_EQ(direct.stats.dump(), replay.stats.dump());
        }
    }
}

TEST(TraceBuffer, KeyframesMarkIntervalBoundaries)
{
    const Program& prog = compiledWorkload("coremark", Isa::Clockhands);
    TraceBuffer buf;
    buf.setKeyframeInterval(10'000);
    runProgram(prog, kCap, &buf);

    // One keyframe per full interval past the first record; none at
    // instruction 0 (replay from the start needs no seek).
    ASSERT_EQ(buf.keyframes().size(), kCap / 10'000 - 1);
    uint64_t expect = 10'000;
    uint64_t prevOffset = 0;
    for (const TraceKeyframe& kf : buf.keyframes()) {
        EXPECT_EQ(kf.instIndex, expect);
        EXPECT_GT(kf.byteOffset, prevOffset);
        EXPECT_LT(kf.byteOffset, buf.byteSize());
        prevOffset = kf.byteOffset;
        expect += 10'000;
    }
}

TEST(TraceBuffer, ReplayRangeMatchesFullReplayOnEverySlice)
{
    for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
        SCOPED_TRACE(isaName(isa));
        const Program& prog = compiledWorkload("coremark", isa);

        TraceBuffer keyframed;
        keyframed.setKeyframeInterval(7'001);  // off-interval boundaries
        TraceBuffer plain;                     // default 1M: no keyframes
        RecordSink full;
        TeeSink tee;
        tee.add(&keyframed);
        tee.add(&plain);
        tee.add(&full);
        runProgram(prog, kCap, &tee);
        ASSERT_FALSE(keyframed.keyframes().empty());
        ASSERT_TRUE(plain.keyframes().empty());

        // Slices straddling keyframes, landing on one exactly, before
        // the first, and running to the end of the stream.
        const struct { uint64_t first, n; } slices[] = {
            {0, 100},          {6'999, 10},     {7'001, 3},
            {20'000, 15'000},  {kCap - 5, 5},   {123'456, 1},
        };
        for (const auto& s : slices) {
            SCOPED_TRACE("slice " + std::to_string(s.first));
            RecordSink viaKeyframes, viaSkip;
            keyframed.replayRange(viaKeyframes, s.first, s.n);
            plain.replayRange(viaSkip, s.first, s.n);
            ASSERT_EQ(viaKeyframes.insts().size(), s.n);
            ASSERT_EQ(viaSkip.insts().size(), s.n);
            for (uint64_t i = 0; i < s.n; ++i) {
                expectSameInst(full.insts()[s.first + i],
                               viaKeyframes.insts()[i], i);
                expectSameInst(full.insts()[s.first + i],
                               viaSkip.insts()[i], i);
            }
        }
    }
}

TEST(TraceBuffer, TruncatedCaptureRefusesReplayLoudly)
{
    const Program& prog = compiledWorkload("coremark", Isa::Riscv);
    TraceBuffer buf;
    buf.setByteLimit(1024);  // stops recording long before kCap
    runProgram(prog, kCap, &buf);
    ASSERT_TRUE(buf.overLimit());
    ASSERT_GT(buf.instCount(), 0u);

    // A truncated capture is a user-level configuration error, not an
    // internal invariant: it must throw the structured FatalError in
    // release builds too, from every replay entry point.
    RecordSink sink;
    EXPECT_THROW(buf.replay(sink), FatalError);
    EXPECT_THROW(buf.replayTo(sink), FatalError);
    EXPECT_THROW(buf.replayRange(sink, 0, 1), FatalError);
}

TEST(TraceCacheTest, CapturesOncePerKeyAndDistinguishesMaxInsts)
{
    const Program& prog = compiledWorkload("coremark", Isa::Clockhands);
    TraceCache cache(64u << 20);

    const auto a = cache.get("coremark", Isa::Clockhands, kCap,
                                     prog);
    const auto b = cache.get("coremark", Isa::Clockhands, kCap,
                                     prog);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a, b);
    EXPECT_EQ(cache.captureCount(), 1u);
    EXPECT_EQ(cache.lookupCount(), 2u);
    EXPECT_EQ(cache.bytesUsed(), a->byteSize());
    EXPECT_EQ(a->instCount(), kCap);

    // A different instruction cap is a different committed stream.
    const auto c = cache.get("coremark", Isa::Clockhands,
                                     kCap / 2, prog);
    ASSERT_NE(c, nullptr);
    EXPECT_NE(a, c);
    EXPECT_EQ(c->instCount(), kCap / 2);
    EXPECT_EQ(cache.captureCount(), 2u);
}

TEST(TraceCacheTest, BudgetOverflowFallsBackWithIdenticalMetrics)
{
    const Program& prog = compiledWorkload("coremark", Isa::Riscv);
    TraceCache tiny(1024);  // ~3 bytes/inst: 200k insts cannot fit
    EXPECT_EQ(tiny.get("coremark", Isa::Riscv, kCap, prog), nullptr);
    EXPECT_EQ(tiny.bytesUsed(), 0u);
    EXPECT_EQ(tiny.captureCount(), 0u);

    JobSpec spec;
    spec.id = "coremark/R/8f";
    spec.workload = "coremark";
    spec.isa = Isa::Riscv;
    spec.cfg = MachineConfig::preset(8);
    spec.maxInsts = kCap;

    TraceCache roomy(64u << 20);
    JobContext viaTiny{spec, &prog, programCache(), &tiny};
    JobContext viaRoomy{spec, &prog, programCache(), &roomy};
    JobContext direct{spec, &prog, programCache(), nullptr};

    const JobMetrics mTiny = simJob(viaTiny);
    const JobMetrics mRoomy = simJob(viaRoomy);
    const JobMetrics mDirect = simJob(direct);
    EXPECT_EQ(roomy.captureCount(), 1u);

    EXPECT_EQ(mDirect.cycles, mTiny.cycles);
    EXPECT_EQ(mDirect.cycles, mRoomy.cycles);
    EXPECT_EQ(mDirect.insts, mTiny.insts);
    EXPECT_EQ(mDirect.insts, mRoomy.insts);
    EXPECT_EQ(mDirect.counters, mTiny.counters);
    EXPECT_EQ(mDirect.counters, mRoomy.counters);
}

TEST(HotPageCache, MemoryContentsMatchWithCacheDisabled)
{
    Memory cached, plain;
    plain.setPageCacheEnabled(false);

    // Pseudo-random mixed-size accesses, including page-straddling ones
    // and block transfers, must read back identically from both.
    Prng prng(7);
    const unsigned sizes[4] = {1, 2, 4, 8};
    for (int i = 0; i < 20000; ++i) {
        const uint64_t addr = prng.next() & 0xffffful;
        const unsigned size = sizes[prng.next() & 3];
        const uint64_t value = prng.next();
        cached.write(addr, size, value);
        plain.write(addr, size, value);
        const uint64_t back = prng.next() & 0xffffful;
        ASSERT_EQ(cached.read(back, size), plain.read(back, size))
            << "addr 0x" << std::hex << back;
    }

    uint8_t blockIn[10000];
    for (size_t i = 0; i < sizeof(blockIn); ++i)
        blockIn[i] = static_cast<uint8_t>(prng.next());
    cached.writeBlock(0x3ffe, blockIn, sizeof(blockIn));
    plain.writeBlock(0x3ffe, blockIn, sizeof(blockIn));
    uint8_t a[sizeof(blockIn)], b[sizeof(blockIn)];
    cached.readBlock(0x3ffe, a, sizeof(a));
    plain.readBlock(0x3ffe, b, sizeof(b));
    EXPECT_EQ(0, std::memcmp(a, b, sizeof(a)));
    EXPECT_EQ(cached.residentPages(), plain.residentPages());
}

TEST(HotPageCache, EmulationResultUnchangedWithCacheDisabled)
{
    for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
        SCOPED_TRACE(isaName(isa));
        const Program& prog = compiledWorkload("mcf", isa);

        Emulator cached(prog);
        RunResult rc = cached.run(kCap);

        Emulator plain(prog);
        plain.memory().setPageCacheEnabled(false);
        RunResult rp = plain.run(kCap);

        EXPECT_EQ(rc.exited, rp.exited);
        EXPECT_EQ(rc.exitCode, rp.exitCode);
        EXPECT_EQ(rc.instCount, rp.instCount);
        EXPECT_EQ(rc.output, rp.output);
    }
}

TEST(EmulatorOutput, ChunkedRunsReturnOnlyNewBytes)
{
    // Run to completion: the workloads only print their checksum at the
    // end, so a capped run would compare empty strings.
    const Program& prog = compiledWorkload("coremark", Isa::Riscv);

    Emulator whole(prog);
    const std::string all = whole.run().output;
    ASSERT_FALSE(all.empty());

    Emulator chunked(prog);
    std::string stitched;
    while (!chunked.done())
        stitched += chunked.run(100'000).output;
    EXPECT_EQ(all, stitched);
}

} // namespace
} // namespace ch
