#include <gtest/gtest.h>

#include "backend/backend.h"
#include "emu/emulator.h"
#include "isa/encoding.h"
#include "trace/analyzers.h"

namespace ch {
namespace {

/** Compile + run on one ISA; assert clean exit; return the result. */
RunResult
run(Isa isa, const std::string& src, uint64_t maxInsts = 20'000'000)
{
    Program p = compileMiniC(src, isa);
    RunResult r = runProgram(p, maxInsts);
    EXPECT_TRUE(r.exited);
    return r;
}

// ---------------------------------------------------------------------
// The three Fig. 2 overheads appear in STRAIGHT and not in Clockhands.
// ---------------------------------------------------------------------

const char* kTightLoop = R"(
    int main() {
        long bound = 100000;
        long acc = 0;
        for (long i = 0; i < bound; ++i)
            acc = acc + (i & 7);
        return (int)(acc & 63);
    }
)";

TEST(DistanceSched, LoopConstantRelaysOnlyInStraight)
{
    MixAnalyzer riscMix, sMix, cMix;
    runProgram(compileMiniC(kTightLoop, Isa::Riscv), ~0ull, &riscMix);
    runProgram(compileMiniC(kTightLoop, Isa::Straight), ~0ull, &sMix);
    runProgram(compileMiniC(kTightLoop, Isa::Clockhands), ~0ull, &cMix);
    const double riscMv =
        static_cast<double>(riscMix.count(MixCat::Move)) / riscMix.total();
    const double sMv =
        static_cast<double>(sMix.count(MixCat::Move)) / sMix.total();
    const double cMv =
        static_cast<double>(cMix.count(MixCat::Move)) / cMix.total();
    // STRAIGHT relays the bound (and the loop-carried values) every
    // iteration; Clockhands parks the constant in v.
    EXPECT_GT(sMv, cMv + 0.05);
    EXPECT_LT(cMv, riscMv + 0.10);
}

TEST(DistanceSched, ClockhandsLoopDoesNotWriteV)
{
    // In the hot loop the v hand must not be written (its distances are
    // what make the loop constant free to reference).
    Program p = compileMiniC(kTightLoop, Isa::Clockhands);
    HandUsageAnalyzer hu;
    runProgram(p, ~0ull, &hu);
    // v writes are a handful (setup), not per-iteration.
    EXPECT_LT(hu.writes(HandV), 100u);
    EXPECT_GT(hu.total(), 100000u);
}

TEST(DistanceSched, ConvergenceOverheadOnlyInStraight)
{
    // Fig. 2(c): every path into a STRAIGHT convergence point must end
    // in a slot-consuming transfer (a nop on fall-through paths; our
    // backend uses explicit jumps, which cost the same slot). Clockhands
    // transfers consume nothing, so its jump+nop+move overhead at joins
    // is far smaller.
    const char* src = R"(
        int main() {
            long acc = 0;
            for (long i = 0; i < 1000; ++i) {
                if (i & 1) acc += 3; else acc += 5;
            }
            return (int)(acc & 63);
        }
    )";
    MixAnalyzer sMix, cMix;
    runProgram(compileMiniC(src, Isa::Straight), ~0ull, &sMix);
    runProgram(compileMiniC(src, Isa::Clockhands), ~0ull, &cMix);
    const uint64_t sOverhead = sMix.count(MixCat::Nop) +
                               sMix.count(MixCat::Move);
    const uint64_t cOverhead = cMix.count(MixCat::Nop) +
                               cMix.count(MixCat::Move);
    EXPECT_EQ(cMix.count(MixCat::Nop), 0u);
    EXPECT_GT(sOverhead, cOverhead + 1000);
}

TEST(DistanceSched, MaxDistanceRelaysInLongBlocks)
{
    // A single basic block with ~200 independent adds: a value defined
    // at the top is referenced at the bottom, beyond STRAIGHT's reach.
    std::string src = "int main() {\n    long keep = 12345;\n";
    for (int i = 0; i < 200; ++i) {
        src += "    long t" + std::to_string(i) + " = " +
               std::to_string(i) + " + g;\n";
    }
    src += "    long acc = keep";
    for (int i = 0; i < 200; ++i)
        src += " + t" + std::to_string(i);
    src += ";\n    return (int)(acc & 63);\n}\n";
    src = "long g = 1;\n" + src;

    RunResult riscv = run(Isa::Riscv, src);
    RunResult straight = run(Isa::Straight, src);
    RunResult clock = run(Isa::Clockhands, src);
    EXPECT_EQ(riscv.exitCode, straight.exitCode);
    EXPECT_EQ(riscv.exitCode, clock.exitCode);
}

// ---------------------------------------------------------------------
// Stress: structural limits of the schedulers.
// ---------------------------------------------------------------------

TEST(DistanceSched, DeepRecursionStacksFrames)
{
    const char* src = R"(
        long down(long n, long acc) {
            if (n == 0) return acc;
            return down(n - 1, acc + n);
        }
        int main() { return (int)(down(500, 0) % 101); }
    )";
    const int64_t expected = (500 * 501 / 2) % 101;
    for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands})
        EXPECT_EQ(run(isa, src).exitCode, expected) << isaName(isa);
}

TEST(DistanceSched, TenArguments)
{
    const char* src = R"(
        long many(long a, long b, long c, long d, long e, long f,
                  long g, long h, long i, long j) {
            return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g + 8*h + 9*i
                   + 10*j;
        }
        int main() {
            return (int)(many(1,2,3,4,5,6,7,8,9,10) % 127);
        }
    )";
    int64_t expected = 0;
    for (int i = 1; i <= 10; ++i)
        expected += static_cast<int64_t>(i) * i;
    expected %= 127;
    // RISC register args stop at 8; the distance ISAs take 10 (the s
    // hand's reach minus the RA/SP slots and epilogue slack).
    for (Isa isa : {Isa::Straight, Isa::Clockhands})
        EXPECT_EQ(run(isa, src).exitCode, expected) << isaName(isa);

    // Beyond the limit the compiler reports a clean error.
    const char* tooMany = R"(
        long f(long a, long b, long c, long d, long e, long g,
               long h, long i, long j, long k, long l) { return a; }
        int main() { return (int)f(1,2,3,4,5,6,7,8,9,10,11); }
    )";
    EXPECT_THROW(compileMiniC(tooMany, Isa::Clockhands), FatalError);
}

TEST(DistanceSched, ManyLiveValuesDemoteToMemory)
{
    // More concurrently-live values than any hand can hold: the capacity
    // sweep must spill, and results must stay correct.
    std::string src = "int main() {\n";
    for (int i = 0; i < 30; ++i) {
        src += "    long a" + std::to_string(i) + " = " +
               std::to_string(i * 3 + 1) + ";\n";
    }
    src += "    long acc = 0;\n    for (long r = 0; r < 50; ++r) {\n";
    src += "        acc = acc";
    for (int i = 0; i < 30; ++i)
        src += " + a" + std::to_string(i);
    src += ";\n";
    for (int i = 0; i < 30; i += 3) {
        src += "        a" + std::to_string(i) + " = a" +
               std::to_string((i + 7) % 30) + " + r;\n";
    }
    src += "    }\n    return (int)(acc % 113);\n}\n";

    RunResult riscv = run(Isa::Riscv, src);
    for (Isa isa : {Isa::Straight, Isa::Clockhands})
        EXPECT_EQ(run(isa, src).exitCode, riscv.exitCode) << isaName(isa);
}

TEST(DistanceSched, LeafKeepsParamsInSHand)
{
    // A leaf function reads its arguments straight out of the s hand:
    // the compiled body contains no parameter-homing mv at entry.
    const char* src = R"(
        long lerp(long a, long b, long t) {
            return a + (b - a) * t / 16;
        }
        int main() {
            long acc = 0;
            for (long i = 0; i < 100; ++i) acc += lerp(i, 100 - i, 8);
            return (int)(acc % 97);
        }
    )";
    Program p = compileMiniC(src, Isa::Clockhands);
    const uint64_t start = p.symbol("lerp");
    // First instructions of lerp must not be parameter-homing mvs.
    const Inst& first = p.instAt(start);
    EXPECT_NE(first.op, Op::MV);
    // And it must agree with RISC.
    EXPECT_EQ(run(Isa::Clockhands, src).exitCode,
              run(Isa::Riscv, src).exitCode);
}

TEST(DistanceSched, VSaveRestoreOnlyWhenVWritten)
{
    // A leaf whose loop constants are its own parameters needs no v
    // save/restore (they stay in s); a function with a local loop
    // constant that survives calls does save v.
    const char* leafSrc = R"(
        long sum(long* arr, long n) {
            long acc = 0;
            for (long i = 0; i < n; ++i) acc += arr[i];
            return acc;
        }
        long data[8];
        int main() {
            for (long i = 0; i < 8; ++i) data[i] = i;
            return (int)sum(data, 8);
        }
    )";
    Program p = compileMiniC(leafSrc, Isa::Clockhands);
    // Count v-hand writes in sum's body: none expected.
    HandUsageAnalyzer hu;
    runProgram(p, ~0ull, &hu);
    EXPECT_EQ(run(Isa::Clockhands, leafSrc).exitCode, 28);
}

TEST(DistanceSched, AllEmittedCodeStaysEncodable)
{
    // finalize() range-checks everything; stress with a mix of shapes.
    const char* src = R"(
        long fib(long n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        double gauss(double x, double m) {
            double d = x - m;
            return d * d * 0.5;
        }
        int main() {
            long acc = (long)gauss(3.0, 1.0) + fib(12);
            for (long i = 0; i < 100; ++i) {
                for (long j = 0; j < 10; ++j) {
                    if ((i ^ j) & 1) acc += i * j; else acc -= j;
                }
            }
            return (int)(acc & 63);
        }
    )";
    for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
        Program p = compileMiniC(src, isa);
        // Round-trip every word through the encoder.
        for (size_t i = 0; i < p.text.size(); ++i) {
            const Inst d = decode(isa, p.text[i]);
            EXPECT_EQ(encode(isa, d), p.text[i]) << "inst " << i;
        }
    }
}

// ---------------------------------------------------------------------
// Per-hand lifetime separation (the Fig. 18 property, in miniature).
// ---------------------------------------------------------------------

TEST(DistanceSched, HandsSeparateLifetimes)
{
    const char* src = R"(
        int main() {
            long bound = 20000;   // loop constant -> v, very long lived
            long acc = 0;         // loop-carried -> u/t
            for (long i = 0; i < bound; ++i)
                acc = acc + ((i * 3) ^ (acc >> 2));
            return (int)(acc & 63);
        }
    )";
    Program p = compileMiniC(src, Isa::Clockhands);
    LifetimeAnalyzer lt(Isa::Clockhands);
    runProgram(p, ~0ull, &lt);
    lt.finish();
    // t definitions are numerous and short-lived.
    EXPECT_GT(lt.perHand(HandT).definitions(), 10000u);
    EXPECT_EQ(lt.perHand(HandT).atLeast(12), 0u);
    // v definitions are rare and long-lived.
    EXPECT_LT(lt.perHand(HandV).definitions(), 50u);
    EXPECT_GE(lt.perHand(HandV).atLeast(12), 1u);
}

} // namespace
} // namespace ch
