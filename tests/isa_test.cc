#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/prng.h"
#include "isa/encoding.h"
#include "isa/isa.h"

namespace ch {
namespace {

TEST(OpInfo, TableIsSane)
{
    for (int i = 0; i < kNumOps; ++i) {
        const Op op = static_cast<Op>(i);
        const OpInfo& info = opInfo(op);
        EXPECT_FALSE(info.mnemonic.empty());
        if (info.isLoad() || info.isStore()) {
            EXPECT_GT(info.memBytes, 0) << info.mnemonic;
        } else {
            EXPECT_EQ(info.memBytes, 0) << info.mnemonic;
        }
        EXPECT_LE(info.numSrcs, 2) << info.mnemonic;
        if (info.isLoad()) {
            EXPECT_TRUE(info.hasDst) << info.mnemonic;
        }
        if (info.isStore()) {
            EXPECT_FALSE(info.hasDst) << info.mnemonic;
        }
    }
}

TEST(OpInfo, BranchClassification)
{
    EXPECT_EQ(opInfo(Op::BEQ).brKind, BrKind::Cond);
    EXPECT_EQ(opInfo(Op::JAL).brKind, BrKind::Call);
    EXPECT_EQ(opInfo(Op::J).brKind, BrKind::Jump);
    EXPECT_EQ(opInfo(Op::JALR).brKind, BrKind::IndCall);
    EXPECT_EQ(opInfo(Op::JR).brKind, BrKind::Ret);
    EXPECT_FALSE(opInfo(Op::ADD).isBranch());
    EXPECT_TRUE(opInfo(Op::BEQ).isDirectBranch());
    EXPECT_TRUE(opInfo(Op::JALR).isIndirectBranch());
    EXPECT_FALSE(opInfo(Op::JAL).isIndirectBranch());
}

TEST(OpInfo, MnemonicLookupMatches)
{
    EXPECT_EQ(opName(Op::ADDIW), "addiw");
    EXPECT_EQ(opName(Op::FSGNJN_D), "fsgnjn.d");
}

// ---------------------------------------------------------------------
// Encode/decode round-trip property tests, parameterized over ISA.
// ---------------------------------------------------------------------

class EncodingRoundTrip : public ::testing::TestWithParam<Isa>
{
  protected:
    /** Build a random-but-valid instruction for the given op and ISA. */
    Inst
    randomInst(Op op, Prng& prng)
    {
        const OpInfo& info = opInfo(op);
        const Isa isa = GetParam();
        Inst inst;
        inst.op = op;
        auto randSrc = [&](uint8_t* dist, uint8_t* hand, bool fp) {
            switch (isa) {
              case Isa::Riscv:
                *dist = prng.nextBelow(32) + (fp ? 32 : 0);
                break;
              case Isa::Straight:
                *dist = 1 + prng.nextBelow(kStraightMaxDist);
                break;
              case Isa::Clockhands:
                *hand = prng.nextBelow(kNumHands);
                *dist = prng.nextBelow(kHandDepth);
                break;
            }
        };
        if (info.hasDst) {
            inst.dst = isa == Isa::Clockhands ? prng.nextBelow(kNumHands)
                       : isa == Isa::Riscv
                           ? prng.nextBelow(32) + (info.fpDst() ? 32 : 0)
                           : 0;
        }
        if (info.numSrcs >= 1)
            randSrc(&inst.src1, &inst.src1Hand, info.fpSrc1());
        if (info.numSrcs >= 2)
            randSrc(&inst.src2, &inst.src2Hand, info.fpSrc2());
        // Pick an immediate that fits the narrowest format of any ISA.
        const bool scaled = info.brKind != BrKind::None;
        int64_t imm = static_cast<int64_t>(prng.nextBelow(512)) - 256;
        if (scaled)
            imm *= 4;
        if (info.fmt == Fmt::U)
            imm = static_cast<int64_t>(prng.nextBelow(1 << 20)) - (1 << 19);
        if (info.fmt == Fmt::None || info.fmt == Fmt::R)
            imm = 0;
        if (op == Op::ECALL)
            imm = prng.nextBelow(2);
        inst.imm = imm;
        return inst;
    }
};

TEST_P(EncodingRoundTrip, AllOpsAllFields)
{
    Prng prng(42 + static_cast<int>(GetParam()));
    for (int i = 0; i < kNumOps; ++i) {
        const Op op = static_cast<Op>(i);
        if (op == Op::SPADDI && GetParam() != Isa::Straight)
            continue;
        for (int trial = 0; trial < 50; ++trial) {
            Inst inst = randomInst(op, prng);
            ASSERT_TRUE(encodable(GetParam(), inst))
                << disassemble(GetParam(), inst);
            const uint32_t word = encode(GetParam(), inst);
            const Inst back = decode(GetParam(), word);
            const OpInfo& info = inst.info();
            EXPECT_EQ(back.op, inst.op);
            EXPECT_EQ(back.imm, inst.imm) << disassemble(GetParam(), inst);
            if (info.hasDst && GetParam() != Isa::Straight) {
                EXPECT_EQ(back.dst, inst.dst);
            }
            if (info.numSrcs >= 1) {
                EXPECT_EQ(back.src1, inst.src1);
                if (GetParam() == Isa::Clockhands) {
                    EXPECT_EQ(back.src1Hand, inst.src1Hand);
                }
            }
            if (info.numSrcs >= 2) {
                EXPECT_EQ(back.src2, inst.src2);
                if (GetParam() == Isa::Clockhands) {
                    EXPECT_EQ(back.src2Hand, inst.src2Hand);
                }
            }
        }
    }
}

TEST_P(EncodingRoundTrip, RejectsOverflowingImmediates)
{
    Inst inst;
    inst.op = Op::ADDI;
    inst.imm = 1ll << 40;
    EXPECT_FALSE(encodable(GetParam(), inst));
    EXPECT_THROW(encode(GetParam(), inst), FatalError);

    Inst br;
    br.op = Op::BEQ;
    br.imm = 2;  // misaligned branch offset
    EXPECT_FALSE(encodable(GetParam(), br));
}

INSTANTIATE_TEST_SUITE_P(AllIsas, EncodingRoundTrip,
                         ::testing::Values(Isa::Riscv, Isa::Straight,
                                           Isa::Clockhands),
                         [](const auto& info) {
                             return std::string(isaName(info.param)) == "RISC-V"
                                        ? "Riscv"
                                    : info.param == Isa::Straight
                                        ? "Straight"
                                        : "Clockhands";
                         });

TEST(Encoding, ClockhandsZeroRegister)
{
    Inst inst;
    inst.op = Op::ADDI;
    inst.dst = HandT;
    inst.src1Hand = HandS;
    inst.src1 = kHandZeroDist;
    inst.imm = 42;
    const uint32_t w = encode(Isa::Clockhands, inst);
    const Inst back = decode(Isa::Clockhands, w);
    EXPECT_EQ(back.src1Hand, HandS);
    EXPECT_EQ(back.src1, kHandZeroDist);
    EXPECT_EQ(disassemble(Isa::Clockhands, back), "addi t, zero, 42");
}

TEST(Encoding, StraightSpBase)
{
    Inst inst;
    inst.op = Op::SD;
    inst.src1 = kStraightSpBase;  // base = SP
    inst.src2 = 4;                // data = [4]
    inst.imm = 0;
    const uint32_t w = encode(Isa::Straight, inst);
    const Inst back = decode(Isa::Straight, w);
    EXPECT_EQ(back.src1, kStraightSpBase);
    EXPECT_EQ(disassemble(Isa::Straight, back), "sd [4], 0(sp)");
}

TEST(Encoding, DisassemblyMatchesPaperSyntax)
{
    {
        Inst inst;
        inst.op = Op::ADDIW;
        inst.dst = HandT;
        inst.src1Hand = HandT;
        inst.src1 = 1;
        inst.imm = 1;
        EXPECT_EQ(disassemble(Isa::Clockhands, inst), "addiw t, t[1], 1");
    }
    {
        Inst inst;
        inst.op = Op::SW;
        inst.src1Hand = HandT;  // base t[1]
        inst.src1 = 1;
        inst.src2Hand = HandV;  // data v[0]
        inst.src2 = 0;
        inst.imm = 0;
        EXPECT_EQ(disassemble(Isa::Clockhands, inst), "sw v[0], 0(t[1])");
    }
    {
        Inst inst;
        inst.op = Op::BNE;
        inst.src1 = 11;  // a1
        inst.src2 = 15;  // a5
        inst.imm = -16;
        EXPECT_EQ(disassemble(Isa::Riscv, inst), "bne a1, a5, -16");
    }
}

TEST(Encoding, RiscRegNames)
{
    EXPECT_EQ(riscRegName(0), "zero");
    EXPECT_EQ(riscRegName(1), "ra");
    EXPECT_EQ(riscRegName(2), "sp");
    EXPECT_EQ(riscRegName(10), "a0");
    EXPECT_EQ(riscRegName(32), "f0");
    EXPECT_EQ(riscRegName(63), "f31");
}

} // namespace
} // namespace ch
