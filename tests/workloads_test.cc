#include <gtest/gtest.h>

#include "emu/emulator.h"
#include "workloads/workloads.h"

namespace ch {
namespace {

/** Reference results (validated once by cross-ISA agreement). */
struct Expected {
    const char* name;
    int64_t exitCode;
    const char* output;
};

const Expected kExpected[] = {
    {"coremark", 71, "35655\n"},
    {"bzip2", 100, "44516\n"},
    {"mcf", 102, "2790\n"},
    {"lbm", 54, "376630\n"},
    {"xz", 90, "15311578\n"},
};

TEST(Workloads, CorpusHasFiveBenchmarks)
{
    EXPECT_EQ(workloads().size(), 5u);
    for (const auto& w : workloads()) {
        EXPECT_FALSE(w.source.empty());
        EXPECT_FALSE(w.description.empty());
    }
    EXPECT_THROW(workload("nope"), FatalError);
}

class WorkloadRun : public ::testing::TestWithParam<const char*>
{
};

TEST_P(WorkloadRun, RiscvMatchesReference)
{
    const Expected* exp = nullptr;
    for (const auto& e : kExpected) {
        if (std::string(e.name) == GetParam())
            exp = &e;
    }
    ASSERT_NE(exp, nullptr);
    RunResult r =
        runProgram(compiledWorkload(GetParam(), Isa::Riscv), 100'000'000);
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, exp->exitCode);
    EXPECT_EQ(r.output, exp->output);
}

TEST_P(WorkloadRun, ThreeIsasAgree)
{
    RunResult riscv =
        runProgram(compiledWorkload(GetParam(), Isa::Riscv), 400'000'000);
    RunResult straight =
        runProgram(compiledWorkload(GetParam(), Isa::Straight),
                   400'000'000);
    RunResult clock = runProgram(
        compiledWorkload(GetParam(), Isa::Clockhands), 400'000'000);
    ASSERT_TRUE(riscv.exited && straight.exited && clock.exited);
    EXPECT_EQ(riscv.exitCode, straight.exitCode);
    EXPECT_EQ(riscv.exitCode, clock.exitCode);
    EXPECT_EQ(riscv.output, straight.output);
    EXPECT_EQ(riscv.output, clock.output);
    // Instruction-count ordering the paper reports (Fig 15): STRAIGHT
    // executes clearly more instructions than RISC; Clockhands lands
    // close to RISC, well below STRAIGHT.
    EXPECT_GT(straight.instCount, riscv.instCount);
    EXPECT_LT(clock.instCount, straight.instCount);
}

INSTANTIATE_TEST_SUITE_P(Corpus, WorkloadRun,
                         ::testing::Values("coremark", "bzip2", "mcf",
                                           "lbm", "xz"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

} // namespace
} // namespace ch
