/**
 * @file
 * Sweep-engine tests: scheduling-independent determinism (a 4-thread
 * sweep must serialize to exactly the bytes of a 1-thread sweep), the
 * compile-once contract of CompiledProgramCache, stable per-job seeding,
 * and error containment (one failing job must not poison the sweep).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "bench_util.h"
#include "runner/metrics.h"
#include "runner/runner.h"
#include "uarch/sim.h"

namespace ch {
namespace {

constexpr uint64_t kCap = 20'000;

/** A small but representative sweep: 2 workloads x 3 ISAs x 2 widths. */
void
addSweep(SweepRunner& runner)
{
    for (const char* wl : {"coremark", "xz"}) {
        for (Isa isa : {Isa::Riscv, Isa::Straight, Isa::Clockhands}) {
            for (int width : {4, 8}) {
                JobSpec spec;
                spec.id = std::string(wl) + "/" + std::string(isaName(isa)) +
                          "/" + std::to_string(width) + "f";
                spec.workload = wl;
                spec.isa = isa;
                spec.cfg = MachineConfig::preset(width);
                spec.maxInsts = kCap;
                runner.addSim(spec);
            }
        }
    }
}

std::string
runSweepJson(int jobs)
{
    RunnerOptions opt;
    opt.jobs = jobs;
    SweepRunner runner(opt);
    addSweep(runner);
    const auto& results = runner.run();
    MetricsOptions mo;
    mo.bench = "runner_test";
    return metricsJsonString(mo, results);
}

TEST(SweepRunner, FourThreadsMatchOneThreadByteForByte)
{
    const std::string serial = runSweepJson(1);
    const std::string parallel = runSweepJson(4);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

TEST(SweepRunner, ResultsComeBackInAddOrder)
{
    RunnerOptions opt;
    opt.jobs = 4;
    SweepRunner runner(opt);
    addSweep(runner);
    const auto& results = runner.run();
    ASSERT_EQ(results.size(), 12u);
    EXPECT_EQ(results.front().spec.id,
              std::string("coremark/") + std::string(isaName(Isa::Riscv)) +
                  "/4f");
    EXPECT_EQ(results.back().spec.id,
              std::string("xz/") + std::string(isaName(Isa::Clockhands)) +
                  "/8f");
    for (const auto& r : results) {
        EXPECT_TRUE(r.ok) << r.spec.id << ": " << r.error;
        EXPECT_GT(r.metrics.cycles, 0u) << r.spec.id;
    }
}

TEST(SweepRunner, CompileCacheBuildsEachPairExactlyOnce)
{
    CompiledProgramCache cache;
    RunnerOptions opt;
    opt.jobs = 4;
    SweepRunner runner(opt, &cache);
    // 12 jobs over 6 distinct (workload, ISA) pairs.
    addSweep(runner);
    const auto& results = runner.run();
    ASSERT_EQ(results.size(), 12u);
    EXPECT_EQ(cache.compileCount(), 6u);
    EXPECT_GE(cache.lookupCount(), 12u);

    // Further lookups hit the cache.
    cache.get("coremark", Isa::Riscv);
    EXPECT_EQ(cache.compileCount(), 6u);
}

TEST(SweepRunner, SeedsAreStableAndSpecDerived)
{
    JobSpec a;
    a.id = "coremark/R/8f";
    a.workload = "coremark";
    a.isa = Isa::Riscv;
    a.maxInsts = kCap;
    JobSpec b = a;
    EXPECT_EQ(jobSeed(a), jobSeed(b));
    b.id = "coremark/R/4f";
    EXPECT_NE(jobSeed(a), jobSeed(b));

    SweepRunner r1, r2;
    const size_t i1 = r1.addSim(a);
    const size_t i2 = r2.addSim(a);
    EXPECT_EQ(r1.run()[i1].spec.seed, r2.run()[i2].spec.seed);
    EXPECT_NE(r1.run()[i1].spec.seed, 0u);
}

TEST(SweepRunner, FailingJobIsContainedAndReported)
{
    RunnerOptions opt;
    opt.jobs = 2;
    SweepRunner runner(opt);
    JobSpec good;
    good.id = "good";
    good.workload = "coremark";
    good.isa = Isa::Riscv;
    good.cfg = MachineConfig::preset(4);
    good.maxInsts = kCap;
    runner.addSim(good);

    JobSpec bad;
    bad.id = "bad";
    runner.add(bad, [](const JobContext&) -> JobMetrics {
        fatal("intentional job failure");
    });

    const auto& results = runner.run();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("intentional job failure"),
              std::string::npos);

    // Failed jobs surface in the metrics document.
    MetricsOptions mo;
    mo.bench = "runner_test";
    const std::string json = metricsJsonString(mo, results);
    EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
    EXPECT_NE(json.find("intentional job failure"), std::string::npos);
}

TEST(SweepRunner, UnknownWorkloadFailsThatJobOnly)
{
    SweepRunner runner;
    JobSpec spec;
    spec.id = "nope";
    spec.workload = "no-such-workload";
    spec.isa = Isa::Riscv;
    runner.addSim(spec);
    const auto& results = runner.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("unknown workload"),
              std::string::npos);
}

TEST(MetricsWriter, HostMetricsAreOptIn)
{
    SweepRunner runner;
    JobSpec spec;
    spec.id = "coremark/R/4f";
    spec.workload = "coremark";
    spec.isa = Isa::Riscv;
    spec.cfg = MachineConfig::preset(4);
    spec.maxInsts = kCap;
    runner.addSim(spec);
    const auto& results = runner.run();

    MetricsOptions mo;
    mo.bench = "runner_test";
    const std::string plain = metricsJsonString(mo, results);
    EXPECT_EQ(plain.find("wall_ms"), std::string::npos);
    EXPECT_EQ(plain.find("peak_rss_kib"), std::string::npos);

    mo.hostMetrics = true;
    const std::string host = metricsJsonString(mo, results);
    EXPECT_NE(host.find("wall_ms"), std::string::npos);
    EXPECT_NE(host.find("peak_rss_kib"), std::string::npos);
}

TEST(BenchUtil, MaxInstsStrictParsing)
{
    ASSERT_EQ(unsetenv("CH_BENCH_MAXINSTS"), 0);
    EXPECT_EQ(benchMaxInsts(123), 123u);

    ASSERT_EQ(setenv("CH_BENCH_MAXINSTS", "50000", 1), 0);
    EXPECT_EQ(benchMaxInsts(123), 50000u);

    ASSERT_EQ(setenv("CH_BENCH_MAXINSTS", "0x100", 1), 0);
    EXPECT_EQ(benchMaxInsts(123), 256u);

    for (const char* bad : {"abc", "12abc", "-5", " ",
                            "99999999999999999999999999"}) {
        ASSERT_EQ(setenv("CH_BENCH_MAXINSTS", bad, 1), 0);
        EXPECT_EXIT(benchMaxInsts(123),
                    ::testing::ExitedWithCode(2), "CH_BENCH_MAXINSTS")
            << "value: " << bad;
    }
    unsetenv("CH_BENCH_MAXINSTS");
}

} // namespace
} // namespace ch
