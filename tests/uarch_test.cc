#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "backend/backend.h"
#include "uarch/branch_pred.h"
#include "uarch/cache.h"
#include "uarch/sim.h"
#include "uarch/storeset.h"

namespace ch {
namespace {

// ---------------------------------------------------------------------
// Configuration presets (Table 2).
// ---------------------------------------------------------------------

TEST(Config, Table2Presets)
{
    const MachineConfig c4 = MachineConfig::preset(4);
    EXPECT_EQ(c4.robSize, 256);
    EXPECT_EQ(c4.schedSize, 128);
    EXPECT_EQ(c4.loadQueue, 64);
    EXPECT_EQ(c4.storeQueue, 48);
    EXPECT_EQ(c4.issueWidth, 8);
    EXPECT_EQ(c4.fu.intAlu, 4);

    const MachineConfig c16 = MachineConfig::preset(16);
    EXPECT_EQ(c16.robSize, 4096);
    EXPECT_EQ(c16.schedSize, 512);
    EXPECT_EQ(c16.issueWidth, 16);
    EXPECT_EQ(c16.fu.intAlu, 8);

    EXPECT_THROW(MachineConfig::preset(5), FatalError);
}

TEST(Config, FrontendDepthPerIsa)
{
    const MachineConfig cfg = MachineConfig::preset(8);
    EXPECT_EQ(cfg.frontendDepth(Isa::Riscv), 7);
    EXPECT_EQ(cfg.frontendDepth(Isa::Straight), 5);
    EXPECT_EQ(cfg.frontendDepth(Isa::Clockhands), 5);
}

TEST(Config, HandQuotasSumToPhysRegs)
{
    for (int w : {4, 6, 8, 12, 16}) {
        const MachineConfig cfg = MachineConfig::preset(w);
        int sum = 0;
        for (int h = 0; h < kNumHands; ++h)
            sum += cfg.handQuota(h);
        EXPECT_EQ(sum, cfg.physRegsRenameFree()) << "width " << w;
        // t gets the lion's share (48/64).
        EXPECT_GT(cfg.handQuota(HandT), cfg.handQuota(HandU));
        EXPECT_GT(cfg.handQuota(HandU), cfg.handQuota(HandV));
    }
}

// ---------------------------------------------------------------------
// Branch predictors.
// ---------------------------------------------------------------------

TEST(Tage, LearnsBiasedBranch)
{
    Tage tage;
    int correct = 0;
    for (int i = 0; i < 1000; ++i) {
        if (tage.predict(0x1000) == true)
            ++correct;
        tage.update(0x1000, true);
    }
    EXPECT_GT(correct, 950);
}

TEST(Tage, LearnsLoopPattern)
{
    // 7 taken + 1 not-taken, repeating: needs history to predict the exit.
    Tage tage;
    int correctLate = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool taken = (i % 8) != 7;
        const bool pred = tage.predict(0x2000);
        if (i >= 2000 && pred == taken)
            ++correctLate;
        tage.update(0x2000, taken);
    }
    // TAGE should get well above the 87.5% a bimodal-only predictor gets.
    EXPECT_GT(correctLate, 1900);
}

TEST(Tage, AlternatingPattern)
{
    Tage tage;
    int correctLate = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool taken = i % 2 == 0;
        if (i >= 1000 && tage.predict(0x3000) == taken)
            ++correctLate;
        tage.update(0x3000, taken);
    }
    EXPECT_GT(correctLate, 950);
}

TEST(Btb, StoresAndEvicts)
{
    Btb btb(64, 4);
    btb.insert(0x1000, 0x2000);
    EXPECT_EQ(btb.lookup(0x1000), 0x2000u);
    EXPECT_EQ(btb.lookup(0x1004), 0u);
    // Overwrite.
    btb.insert(0x1000, 0x3000);
    EXPECT_EQ(btb.lookup(0x1000), 0x3000u);
    // Fill a set beyond capacity: 5 PCs mapping to the same set.
    const uint64_t stride = 64 / 4 * 4;  // sets * 4 bytes
    for (int i = 1; i <= 5; ++i)
        btb.insert(0x1000 + i * stride * 4, 0x4000 + i);
    int present = 0;
    for (int i = 1; i <= 5; ++i) {
        if (btb.lookup(0x1000 + i * stride * 4) != 0)
            ++present;
    }
    EXPECT_LE(present, 4);
    EXPECT_GE(present, 3);
}

TEST(Ras, PushPopNesting)
{
    Ras ras(16);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

// ---------------------------------------------------------------------
// Caches.
// ---------------------------------------------------------------------

TEST(Cache, HitAfterFill)
{
    Cache c(4, 2, 64);  // 4 KiB, 2-way: 32 sets
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1001));  // same line
    EXPECT_FALSE(c.access(0x1040));  // next line
}

TEST(Cache, LruEviction)
{
    Cache c(4, 2, 64);  // 32 sets: addresses 0x800 apart share a set
    const uint64_t setStride = 32 * 64;
    c.access(0x0);
    c.access(setStride);
    EXPECT_TRUE(c.access(0x0));          // refresh 0
    c.access(2 * setStride);             // evicts setStride (LRU)
    EXPECT_TRUE(c.probe(0x0));
    EXPECT_FALSE(c.probe(setStride));
    EXPECT_TRUE(c.probe(2 * setStride));
}

TEST(Prefetcher, DetectsAscendingStream)
{
    StreamPrefetcher pf(8, 2, 64);
    std::vector<uint64_t> issued;
    for (int i = 0; i < 8; ++i) {
        auto lines = pf.onMiss(0x10000 + i * 64);
        issued.insert(issued.end(), lines.begin(), lines.end());
    }
    ASSERT_FALSE(issued.empty());
    // Prefetches run ahead of the miss stream.
    for (uint64_t a : issued)
        EXPECT_GT(a, 0x10000u + 7 * 64);
}

TEST(Hierarchy, LatenciesStack)
{
    MachineConfig cfg = MachineConfig::preset(8);
    StatGroup stats;
    MemoryHierarchy mem(cfg, &stats);
    // Cold miss goes to memory through L2.
    const int cold = mem.dataAccess(0x40000, false);
    EXPECT_EQ(cold, cfg.l1dLatency + cfg.l2Latency + cfg.memLatency);
    const int hit = mem.dataAccess(0x40000, false);
    EXPECT_EQ(hit, cfg.l1dLatency);
    EXPECT_EQ(stats.value("cache.l1d.reads"), 2u);
    EXPECT_EQ(stats.value("cache.l1d.misses"), 1u);
    EXPECT_EQ(stats.value("cache.l2.misses"), 1u);
}

// ---------------------------------------------------------------------
// Store sets.
// ---------------------------------------------------------------------

TEST(StoreSets, TrainAndLookup)
{
    StoreSets ss(4096, 512);
    EXPECT_EQ(ss.setOf(0x1000), StoreSets::kInvalid);
    ss.train(0x1000, 0x2000);
    EXPECT_NE(ss.setOf(0x1000), StoreSets::kInvalid);
    EXPECT_EQ(ss.setOf(0x1000), ss.setOf(0x2000));
    // Merging keeps both pairs in one set.
    ss.train(0x1000, 0x3000);
    EXPECT_EQ(ss.setOf(0x3000), ss.setOf(0x2000));
}

// ---------------------------------------------------------------------
// End-to-end timing sanity.
// ---------------------------------------------------------------------

SimResult
simSource(Isa isa, const std::string& src, int width = 8)
{
    Program p = compileMiniC(src, isa);
    return simulate(p, MachineConfig::preset(width));
}

const char* kLoopy = R"(
    int main() {
        long acc = 0;
        long i;
        for (i = 0; i < 20000; i = i + 1)
            acc = acc + (i ^ (i >> 3));
        return (int)(acc & 63);
    }
)";

TEST(CycleSim, IpcWithinPhysicalBounds)
{
    SimResult r = simSource(Isa::Riscv, kLoopy);
    EXPECT_TRUE(r.exited);
    EXPECT_GT(r.ipc(), 0.3);
    EXPECT_LT(r.ipc(), 8.0);  // fetch width bound
}

TEST(CycleSim, WiderMachinesAreNotSlower)
{
    const SimResult narrow = simSource(Isa::Riscv, kLoopy, 4);
    const SimResult wide = simSource(Isa::Riscv, kLoopy, 16);
    EXPECT_LE(wide.cycles, narrow.cycles + narrow.cycles / 10);
}

TEST(CycleSim, DependentChainBoundsIpc)
{
    // A long serial dependency chain cannot exceed 1 result/cycle.
    SimResult r = simSource(Isa::Riscv, R"(
        int main() {
            long x = 1;
            long i;
            for (i = 0; i < 30000; i = i + 1)
                x = (x * 3 + 1) ^ i;
            return (int)(x & 63);
        }
    )");
    // Chain: mul(3) + add + xor per iteration, so > 4 cycles/iter.
    EXPECT_GT(static_cast<double>(r.cycles), 30000.0 * 4);
}

TEST(CycleSim, DeeperFrontEndPaysMorePerMispredict)
{
    // A data-dependent unpredictable branch: the extra rename stages of
    // a conventional RISC front end (7 vs 5 cycles) must cost cycles on
    // every squash (Fig 13's recovery effect). Compare the same program
    // on the same ISA with only the rename depth changed.
    const char* src = R"(
        long seedState = 7;
        long rnd() {
            seedState = (seedState * 1103515245 + 12345) & 0x7fffffff;
            return seedState;
        }
        int main() {
            long acc = 0;
            long i;
            for (i = 0; i < 30000; i = i + 1) {
                if ((rnd() >> 13) & 1) acc = acc + 3;
                else acc = acc - 1;
            }
            return (int)(acc & 63);
        }
    )";
    Program p = compileMiniC(src, Isa::Riscv);
    MachineConfig shallow = MachineConfig::preset(8);
    shallow.renameStagesOverride = 0;
    MachineConfig deep = MachineConfig::preset(8);
    deep.renameStagesOverride = 2;
    const SimResult fast = simulate(p, shallow);
    const SimResult slow = simulate(p, deep);
    EXPECT_GT(fast.stats.value("branch.mispredicts"), 5000u);
    EXPECT_EQ(fast.stats.value("branch.mispredicts"),
              slow.stats.value("branch.mispredicts"));
    // Roughly 2 extra cycles per squash.
    const uint64_t m = fast.stats.value("branch.mispredicts");
    EXPECT_GT(slow.cycles, fast.cycles + m);
}

TEST(CycleSim, CacheMissesSlowExecution)
{
    // A pointer-chasing random walk defeats caches and the prefetcher.
    const char* chase = R"(
        long next[32768];
        int main() {
            long i;
            long n = 32768;
            for (i = 0; i < n; i = i + 1)
                next[i] = (i * 9973 + 12345) % n;
            long p = 0;
            long acc = 0;
            for (i = 0; i < 60000; i = i + 1) {
                p = next[p];
                acc = acc + p;
            }
            return (int)(acc & 63);
        }
    )";
    SimResult r = simSource(Isa::Riscv, chase);
    EXPECT_GT(r.stats.value("cache.l1d.misses"), 1000u);
    EXPECT_LT(r.ipc(), 3.0);
}

TEST(CycleSim, StatsArePopulated)
{
    SimResult r = simSource(Isa::Clockhands, kLoopy);
    EXPECT_GT(r.stats.value("fetch.insts"), 0u);
    EXPECT_GT(r.stats.value("dispatch.insts"), 0u);
    EXPECT_GT(r.stats.value("iq.issues"), 0u);
    EXPECT_GT(r.stats.value("rob.commits"), 0u);
    EXPECT_GT(r.stats.value("rename.dstWrites"), 0u);
    EXPECT_GT(r.stats.value("branch.conds"), 0u);
    EXPECT_EQ(r.stats.value("sim.insts"), r.insts);
}

TEST(MonoQueueTest, EmptyPopIsANoOp)
{
    MonoQueue q;
    EXPECT_TRUE(q.empty());
    q.pop();  // must not crash or underflow
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);

    q.push(5);
    q.pop();
    EXPECT_TRUE(q.empty());
    q.pop();  // empty again: still a no-op
    EXPECT_TRUE(q.empty());
}

TEST(MonoQueueTest, InterleavedPushPopKeepsFifoOrder)
{
    // The queueConstraint drain pattern: nondecreasing pushes with pops
    // interleaved must always surface the oldest (minimum) entry, the
    // property that makes the FIFO equivalent to a min-heap.
    MonoQueue q;
    q.push(3);
    q.push(3);
    q.push(7);
    EXPECT_EQ(q.top(), 3u);
    q.pop();
    EXPECT_EQ(q.top(), 3u);
    q.push(7);
    q.push(12);
    q.pop();
    EXPECT_EQ(q.top(), 7u);
    EXPECT_EQ(q.size(), 3u);
    q.pop();
    q.pop();
    EXPECT_EQ(q.top(), 12u);
    q.pop();
    EXPECT_TRUE(q.empty());
}

TEST(StatGroupTest, CachedCounterPointersStayValidAsGroupGrows)
{
    // The hot() pattern in CycleSim/MemoryHierarchy caches Counter*
    // across the whole run; registering many more counters afterwards
    // must never invalidate them (std::map nodes are stable).
    StatGroup stats;
    Counter* hot = &stats.counter("hot.counter");
    ++*hot;

    std::vector<Counter*> early;
    for (int i = 0; i < 16; ++i) {
        early.push_back(&stats.counter("early." + std::to_string(i)));
        *early.back() += static_cast<uint64_t>(i);
    }
    for (int i = 0; i < 4096; ++i)
        stats.counter("late." + std::to_string(i)).set(1);

    EXPECT_EQ(hot, &stats.counter("hot.counter"));
    ++*hot;
    EXPECT_EQ(stats.value("hot.counter"), 2u);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(early[i], &stats.counter("early." + std::to_string(i)));
        EXPECT_EQ(stats.value("early." + std::to_string(i)),
                  static_cast<uint64_t>(i));
    }
}

} // namespace
} // namespace ch
